/**
 * @file
 * Tests of the sweep service (src/serve/): JobQueue ordering, dedup,
 * retry and lease semantics; the wire protocol's round-trip guarantee;
 * specForJob's fingerprint-preserving spec round trip; result-cache
 * corruption robustness; journal torn-line replay; and end-to-end
 * socket campaigns — server restart resume, worker-pool equivalence
 * with the batch driver, and killed-worker lease-expiry requeue.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.hh"
#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "driver/sweep.hh"
#include "serve/job_queue.hh"
#include "serve/journal.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "spec/registries.hh"
#include "spec/spec.hh"
#include "telemetry/metrics.hh"
#include "tests/test_util.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {
namespace {

using serve::FailOutcome;
using serve::JobQueue;
using serve::JobQueueOptions;
using serve::LeasedJob;
using serve::QueueJobState;
using serve::Request;
using serve::SubmitOutcome;

JobSpec
testJob(int nthreads, std::uint64_t seed_offset = 0)
{
    JobSpec spec = JobSpec::forProfile(test::computeOnlyProfile(),
                                       nthreads);
    spec.seedOffset = seed_offset;
    return spec;
}

JobResult
okResult(std::uint64_t ts = 100, std::uint64_t tp = 50)
{
    JobResult r;
    r.status = JobStatus::kOk;
    r.exp.label = "t-compute";
    r.exp.nthreads = 2;
    r.exp.ts = ts;
    r.exp.tp = tp;
    r.exp.actualSpeedup = static_cast<double>(ts) /
                          static_cast<double>(tp);
    return r;
}

std::string
makeTempDir(const std::string &tag)
{
    static std::atomic<int> counter{0};
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sst-serve-test-" + tag + "-" + std::to_string(::getpid()) +
          "-" + std::to_string(counter++)))
            .string();
    std::filesystem::create_directories(dir);
    return dir;
}

// ---- JobQueue ---------------------------------------------------------------

TEST(JobQueue, PriorityThenFifoOrdering)
{
    JobQueue q;
    const SubmitOutcome a = q.submit(testJob(2), 0, 0);
    const SubmitOutcome b = q.submit(testJob(4), 0, 0);
    const SubmitOutcome c = q.submit(testJob(8), 5, 0);

    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(lease.id, c.id); // highest priority first
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(lease.id, a.id); // FIFO within a priority level
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(lease.id, b.id);
    EXPECT_FALSE(q.lease("w", 0, lease));
}

TEST(JobQueue, FingerprintDedup)
{
    JobQueue q;
    const SubmitOutcome first = q.submit(testJob(2), 0, 0);
    EXPECT_FALSE(first.deduped);

    const SubmitOutcome dup = q.submit(testJob(2), 3, 0);
    EXPECT_TRUE(dup.deduped);
    EXPECT_EQ(dup.id, first.id);

    // Completed jobs still dedup: a resubmitted campaign is a no-op.
    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    ASSERT_TRUE(q.complete(lease.id, "w", okResult()));
    const SubmitOutcome after = q.submit(testJob(2), 0, 0);
    EXPECT_TRUE(after.deduped);
    EXPECT_EQ(after.id, first.id);

    EXPECT_EQ(q.stats().submitted, 3u);
    EXPECT_EQ(q.stats().deduped, 2u);
}

TEST(JobQueue, FailedJobsDoNotDedup)
{
    JobQueueOptions opts;
    opts.maxAttempts = 1;
    JobQueue q(opts);
    const SubmitOutcome first = q.submit(testJob(2), 0, 0);
    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(q.fail(lease.id, "w", "boom", 0), FailOutcome::kFailed);
    ASSERT_TRUE(q.settled(first.id));
    EXPECT_EQ(q.stateOf(first.id), QueueJobState::kFailed);
    EXPECT_NE(q.resultFor(first.id).error.find("boom"),
              std::string::npos);

    // Resubmitting a failed job is a retry, not a dedup hit.
    const SubmitOutcome retry = q.submit(testJob(2), 0, 0);
    EXPECT_FALSE(retry.deduped);
    EXPECT_NE(retry.id, first.id);
}

TEST(JobQueue, RetryBackoffTiming)
{
    JobQueueOptions opts;
    opts.maxAttempts = 3;
    opts.backoffBaseMs = 1000;
    opts.backoffCapMs = 60000;
    JobQueue q(opts);
    const SubmitOutcome job = q.submit(testJob(2), 0, 0);

    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(lease.attempt, 1);
    EXPECT_EQ(q.fail(lease.id, "w", "io error", 0),
              FailOutcome::kRequeued);

    // Backoff 1000ms after the first failure.
    EXPECT_FALSE(q.lease("w", 999, lease));
    ASSERT_TRUE(q.lease("w", 1000, lease));
    EXPECT_EQ(lease.attempt, 2);
    EXPECT_EQ(q.fail(lease.id, "w", "io error", 1000),
              FailOutcome::kRequeued);

    // Backoff doubles: 2000ms after the second.
    EXPECT_FALSE(q.lease("w", 2999, lease));
    ASSERT_TRUE(q.lease("w", 3000, lease));
    EXPECT_EQ(lease.attempt, 3);

    // Attempts exhausted: the queue gives up without poisoning anything.
    EXPECT_EQ(q.fail(lease.id, "w", "io error", 3000),
              FailOutcome::kFailed);
    EXPECT_EQ(q.stateOf(job.id), QueueJobState::kFailed);
    const JobResult result = q.resultFor(job.id);
    EXPECT_EQ(result.status, JobStatus::kFailed);
    EXPECT_NE(result.error.find("io error"), std::string::npos);
    EXPECT_EQ(q.stats().requeues, 2u);
}

TEST(JobQueue, LeaseExpiryRequeuesAndRejectsStaleCompletion)
{
    JobQueueOptions opts;
    opts.leaseMs = 100;
    JobQueue q(opts);
    const SubmitOutcome job = q.submit(testJob(2), 0, 0);

    LeasedJob lease;
    ASSERT_TRUE(q.lease("dead", 0, lease));
    EXPECT_EQ(q.expireLeases(50), 0u);

    // Heartbeats extend the lease.
    EXPECT_TRUE(q.heartbeat(lease.id, "dead", 80));
    EXPECT_EQ(q.expireLeases(150), 0u);

    // No more heartbeats: the lease expires and the job is requeued.
    EXPECT_EQ(q.expireLeases(200), 1u);
    EXPECT_EQ(q.stateOf(job.id), QueueJobState::kPending);
    EXPECT_FALSE(q.heartbeat(lease.id, "dead", 210));

    // Expiry requeues with first-attempt backoff (1000ms past t=200).
    LeasedJob release;
    EXPECT_FALSE(q.lease("alive", 1000, release));
    ASSERT_TRUE(q.lease("alive", 1200, release));
    EXPECT_EQ(release.attempt, 2);

    // The dead worker coming back to life cannot settle the job twice.
    EXPECT_FALSE(q.complete(job.id, "dead", okResult()));
    EXPECT_TRUE(q.complete(job.id, "alive", okResult()));
    EXPECT_EQ(q.stateOf(job.id), QueueJobState::kDone);
    EXPECT_EQ(q.resultFor(job.id).status, JobStatus::kOk);
}

TEST(JobQueue, LeaseExpiryExhaustsAttempts)
{
    JobQueueOptions opts;
    opts.maxAttempts = 2;
    opts.leaseMs = 10;
    opts.backoffBaseMs = 1;
    JobQueue q(opts);
    const SubmitOutcome job = q.submit(testJob(2), 0, 0);

    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_EQ(q.expireLeases(100), 1u);
    ASSERT_TRUE(q.lease("w", 200, lease));
    EXPECT_EQ(q.expireLeases(300), 1u);

    ASSERT_TRUE(q.settled(job.id));
    EXPECT_EQ(q.stateOf(job.id), QueueJobState::kFailed);
    EXPECT_NE(q.resultFor(job.id).error.find("lease expired"),
              std::string::npos);
}

TEST(JobQueue, FulfilAndCancel)
{
    JobQueue q;
    const SubmitOutcome a = q.submit(testJob(2), 0, 0);
    const SubmitOutcome b = q.submit(testJob(4), 0, 0);

    // Submit-time cache hit: settle a pending job without a lease.
    JobResult cached = okResult();
    cached.status = JobStatus::kCached;
    EXPECT_TRUE(q.fulfil(a.id, cached));
    EXPECT_EQ(q.stateOf(a.id), QueueJobState::kDone);
    EXPECT_TRUE(q.resultFor(a.id).fromCache());
    EXPECT_FALSE(q.fulfil(a.id, cached)); // only pending jobs

    EXPECT_TRUE(q.cancel(b.id));
    EXPECT_EQ(q.stateOf(b.id), QueueJobState::kCancelled);
    EXPECT_EQ(q.resultFor(b.id).status, JobStatus::kFailed);

    // Leased jobs cannot be cancelled out from under their worker.
    const SubmitOutcome c = q.submit(testJob(8), 0, 0);
    LeasedJob lease;
    ASSERT_TRUE(q.lease("w", 0, lease));
    EXPECT_FALSE(q.cancel(c.id));

    EXPECT_TRUE(q.waitSettled(a.id, 0));
    EXPECT_FALSE(q.waitSettled(c.id, 10));
    EXPECT_FALSE(q.idle());
}

TEST(JobQueue, UnfingerprintableSpecStillQueues)
{
    // A workload with zero groups cannot be fingerprinted; it must
    // still enqueue (and fail at execution time with a real message)
    // rather than throwing out of submit and killing the batch.
    JobQueue q;
    JobSpec bad;
    const SubmitOutcome out = q.submit(bad, 0, 0);
    EXPECT_FALSE(out.deduped);
    EXPECT_NE(out.id, 0u);
    LeasedJob lease;
    EXPECT_TRUE(q.lease("w", 0, lease));
}

// ---- driver-over-queue integration -----------------------------------------

TEST(DriverQueue, IntraBatchDuplicatesAreDeduped)
{
    DriverOptions opts;
    opts.jobs = 2;
    BatchStats stats;
    std::vector<JobSpec> specs = {testJob(2), testJob(4), testJob(2)};
    const std::vector<JobResult> results =
        runExperimentBatch(specs, opts, &stats);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.deduped, 1u);
    // The duplicate reports as a cache-style hit with the twin's data.
    EXPECT_EQ(results[2].status, JobStatus::kCached);
    EXPECT_EQ(results[2].exp.tp, results[0].exp.tp);
    EXPECT_EQ(results[0].status, JobStatus::kOk);
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, TokenEscapingRoundTrips)
{
    const std::vector<std::string> nasty = {
        "",      "plain", "with space", "tab\tand\nnewline\r",
        "back\\slash", "\\e", "trailing ", " leading",
    };
    for (const std::string &s : nasty) {
        const std::string escaped = serve::escapeToken(s);
        EXPECT_EQ(escaped.find(' '), std::string::npos) << s;
        EXPECT_EQ(escaped.find('\n'), std::string::npos) << s;
        EXPECT_FALSE(escaped.empty());
        EXPECT_EQ(serve::unescapeToken(escaped), s);
    }
    EXPECT_THROW(serve::unescapeToken("bad\\"), std::invalid_argument);
    EXPECT_THROW(serve::unescapeToken("bad\\q"), std::invalid_argument);
}

TEST(Protocol, RequestRoundTripsAreExact)
{
    std::vector<Request> requests;
    {
        Request r;
        r.kind = Request::Kind::kSubmit;
        r.campaign = "fig 01"; // space survives escaping
        r.priority = -3;
        r.payload = "profiles = cholesky\nthreads = 2, 4\n";
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kResults;
        r.campaign = "fig01";
        r.json = true;
        r.wait = true;
        requests.push_back(r);
    }
    for (const auto kind :
         {Request::Kind::kStatus, Request::Kind::kDrain,
          Request::Kind::kPing}) {
        Request r;
        r.kind = kind;
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kCancel;
        r.campaign = "fig01";
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kLease;
        r.worker = "worker with space";
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kHeartbeat;
        r.worker = "w1";
        r.jobId = 42;
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kDone;
        r.worker = "w1";
        r.jobId = 7;
        r.payload = "result-status ok\nlabel x\nend\n";
        requests.push_back(r);
    }
    {
        Request r;
        r.kind = Request::Kind::kFail;
        r.worker = "w1";
        r.jobId = 7;
        r.payload = "disk\nfull";
        requests.push_back(r);
    }

    for (const Request &r : requests) {
        const std::string line = serve::serializeRequest(r);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        const Request back = serve::parseRequest(line);
        EXPECT_EQ(back.kind, r.kind) << line;
        EXPECT_EQ(back.campaign, r.campaign) << line;
        EXPECT_EQ(back.payload, r.payload) << line;
        EXPECT_EQ(back.priority, r.priority) << line;
        EXPECT_EQ(back.json, r.json) << line;
        EXPECT_EQ(back.wait, r.wait) << line;
        EXPECT_EQ(back.worker, r.worker) << line;
        EXPECT_EQ(back.jobId, r.jobId) << line;
        // Fixed point: re-serializing the parse gives the same bytes,
        // so journaled lines replay bit-exactly.
        EXPECT_EQ(serve::serializeRequest(back), line);
    }
}

TEST(Protocol, ParseErrorsAreDescriptive)
{
    try {
        serve::parseRequest("frobnicate x");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // Unknown verbs list every valid one, like the registries do.
        EXPECT_NE(std::string(e.what()).find("submit"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("lease"),
                  std::string::npos);
    }
    EXPECT_THROW(serve::parseRequest(""), std::invalid_argument);
    EXPECT_THROW(serve::parseRequest("submit onlyone"),
                 std::invalid_argument);
    EXPECT_THROW(serve::parseRequest("heartbeat w notanumber"),
                 std::invalid_argument);
    EXPECT_THROW(serve::parseRequest("results c xml wait"),
                 std::invalid_argument);
}

TEST(Protocol, JobResultCodecRoundTrips)
{
    JobResult ok = okResult(7008000, 3518060);
    ok.exp.label = "label with spaces";
    ok.exp.actualSpeedup = 1.9920069583804711;
    ok.exp.stack.baseSpeedup = 1.9996469645202186;
    ok.exp.stack.spin = 0.00022228159838092585;
    JobResult decoded;
    ASSERT_TRUE(serve::decodeJobResult(serve::encodeJobResult(ok),
                                       decoded));
    EXPECT_EQ(decoded.status, JobStatus::kOk);
    EXPECT_EQ(decoded.exp.label, ok.exp.label);
    EXPECT_EQ(decoded.exp.ts, ok.exp.ts);
    EXPECT_EQ(decoded.exp.tp, ok.exp.tp);
    // %.17g doubles survive the text round trip bit-exactly.
    EXPECT_EQ(decoded.exp.actualSpeedup, ok.exp.actualSpeedup);
    EXPECT_EQ(decoded.exp.stack.spin, ok.exp.stack.spin);

    JobResult failed;
    failed.status = JobStatus::kFailed;
    failed.error = "multi\nline error";
    ASSERT_TRUE(serve::decodeJobResult(serve::encodeJobResult(failed),
                                       decoded));
    EXPECT_EQ(decoded.status, JobStatus::kFailed);
    EXPECT_EQ(decoded.error, failed.error);

    EXPECT_FALSE(serve::decodeJobResult("garbage", decoded));
    EXPECT_FALSE(serve::decodeJobResult("result-status ok\nlabel x\n",
                                        decoded)); // no end sentinel
}

// ---- specForJob -------------------------------------------------------------

void
expectSpecRoundTrip(const JobSpec &job)
{
    const ExperimentSpec spec = specForJob(job);
    const std::string text = serializeSpec(spec);
    EXPECT_EQ(parseSpec(text), spec); // canonical round trip

    const std::vector<JobSpec> jobs = expandGrid(specGrid(spec));
    ASSERT_EQ(jobs.size(), 1u) << text;
    EXPECT_EQ(fingerprintJob(jobs[0]).canonical,
              fingerprintJob(job).canonical)
        << text;
}

TEST(SpecForJob, HomogeneousJobRoundTrips)
{
    JobSpec job;
    job.workload =
        WorkloadSpec::homogeneous(profileByLabel("cholesky"), 4);
    job.ncores = 2; // oversubscribed
    job.params.cache.llcBytes = 1 << 20;
    job.params.schedPolicy = SchedPolicy::kRandom;
    job.params.schedSeed = 7;
    job.seedOffset = 3;
    expectSpecRoundTrip(job);
}

TEST(SpecForJob, MixAndPipelineJobsRoundTrip)
{
    JobSpec mix;
    mix.workload = parseWorkload("fig08_cholesky");
    expectSpecRoundTrip(mix);

    JobSpec pipeline;
    pipeline.workload = parseWorkload("ferret4");
    expectSpecRoundTrip(pipeline);
    EXPECT_EQ(specForJob(pipeline).frontend, "pipeline");
}

// ---- result cache corruption (regression) -----------------------------------

TEST(ResultCacheCorruption, CorruptEntriesAreMissesNotCrashes)
{
    const std::string dir = makeTempDir("cache");
    ResultCache cache(dir);
    const Fingerprint fp = fingerprintJob(testJob(2));
    const std::string path = cache.entryPath(fp);

    cache.store(fp, okResult().exp);
    SpeedupExperiment out;
    ASSERT_TRUE(cache.lookup(fp, out));

    // Absurd canonical-bytes: must miss without attempting a huge
    // allocation (or crashing).
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "sst-result-cache v1\nhash " << fp.hex()
          << "\ncanonical-bytes 99999999999999\ngarbage";
    }
    EXPECT_FALSE(cache.lookup(fp, out));

    // Truncated entry (torn write on a filesystem without atomic
    // rename): miss, not crash.
    cache.store(fp, okResult().exp);
    std::string full;
    {
        std::ifstream f(path, std::ios::binary);
        std::ostringstream ss;
        ss << f.rdbuf();
        full = ss.str();
    }
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << full.substr(0, full.size() / 2);
    }
    EXPECT_FALSE(cache.lookup(fp, out));

    // Binary garbage: miss.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << std::string(64, '\xff');
    }
    EXPECT_FALSE(cache.lookup(fp, out));

    // store() overwrites the bad entry and the cache heals.
    cache.store(fp, okResult().exp);
    EXPECT_TRUE(cache.lookup(fp, out));
    std::filesystem::remove_all(dir);
}

// ---- journal ----------------------------------------------------------------

TEST(Journal, ReplayDropsTornTrailingLine)
{
    const std::string dir = makeTempDir("journal");
    const std::string path = dir + "/journal";

    EXPECT_TRUE(serve::Journal::replay(path).empty()); // no file yet

    {
        serve::Journal j(path);
        j.append("submit a 0 spec-a");
        j.append("submit b 1 spec-b");
    }
    // A crash mid-append leaves a record without its newline; replay
    // must deliver only the complete records.
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f << "submit c 0 torn-rec";
    }
    const std::vector<std::string> records = serve::Journal::replay(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], "submit a 0 spec-a");
    EXPECT_EQ(records[1], "submit b 1 spec-b");
    std::filesystem::remove_all(dir);
}

// ---- net (regression) -------------------------------------------------------

TEST(Net, SecondListenerDoesNotUnlinkLiveSocket)
{
    const std::string dir = makeTempDir("net");
    serve::Endpoint ep;
    ep.path = dir + "/sock";

    serve::Listener live = serve::Listener::listenOn(ep);
    // A second server on the same path must refuse to start — and the
    // refusal must not tear down the live server's socket path.
    EXPECT_THROW(serve::Listener::listenOn(ep), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(ep.path));
    serve::Socket client = serve::connectTo(ep); // still reachable
    EXPECT_TRUE(client.valid());

    // The live listener's own close still cleans the path up.
    client.close();
    live.close();
    EXPECT_FALSE(std::filesystem::exists(ep.path));
    std::filesystem::remove_all(dir);
}

// ---- end-to-end over the socket ---------------------------------------------

/** One request over a fresh connection; returns the first reply line. */
std::string
requestLine(const serve::Endpoint &ep, const std::string &line)
{
    serve::Socket sock = serve::connectTo(ep);
    sock.writeAll(line + "\n");
    sock.shutdownWrite();
    std::string reply;
    if (!sock.readLine(reply))
        return "";
    return reply;
}

/** Streamed request: first line, body (between first and end), end. */
struct Streamed
{
    std::string first;
    std::string body;
    std::string end;
};

Streamed
streamRequest(const serve::Endpoint &ep, const std::string &line)
{
    serve::Socket sock = serve::connectTo(ep);
    sock.writeAll(line + "\n");
    sock.shutdownWrite();
    Streamed out;
    std::string l;
    if (!sock.readLine(out.first))
        return out;
    while (sock.readLine(l)) {
        if (l.rfind("end", 0) == 0) {
            out.end = l;
            break;
        }
        out.body += l + "\n";
    }
    return out;
}

/** Poll until @p server has @p n settled jobs (10 s deadline). */
void
waitForSettled(serve::Server &server, std::size_t n)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    for (;;) {
        const serve::QueueStats stats = server.queue().stats();
        if (stats.done + stats.failed + stats.cancelled >= n)
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "jobs did not settle in time";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

TEST(ServeEndToEnd, DoneForUnknownJobIsStaleNotFatal)
{
    const std::string dir = makeTempDir("bogus-done");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.driver.cacheDir = dir + "/cache"; // cache on: the crash path
    opts.localWorkers = 0;
    serve::Server server(opts);
    server.start();

    // A done for an id the queue never issued must be rejected as
    // stale — with a well-formed ok payload it used to hit an
    // asserting spec lookup on the cache-store path and abort the
    // whole server.
    Request done;
    done.kind = Request::Kind::kDone;
    done.worker = "rogue";
    done.jobId = 424242;
    done.payload = serve::encodeJobResult(okResult());
    EXPECT_EQ(requestLine(server.endpoint(),
                          serve::serializeRequest(done)),
              "err stale");

    // The server survived and still answers.
    const std::string pong = requestLine(server.endpoint(), "ping");
    EXPECT_EQ(pong.rfind("ok pong", 0), 0u) << pong;
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEndToEnd, ResubmitAfterCancelTracksRetryJobs)
{
    const std::string dir = makeTempDir("resubmit");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.localWorkers = 0; // jobs stay pending: cancel can reach them
    serve::Server server(opts);
    server.start();

    const std::string specText = "profiles = cholesky\nthreads = 2\n";
    std::string response;
    ASSERT_TRUE(server.submitCampaign("camp", 0, specText, response));
    EXPECT_EQ(response,
              "ok submitted camp jobs=1 new=1 deduped=0 cached=0");
    EXPECT_EQ(server.cancelCampaign("camp"), 1u);

    // Cancelled twins don't dedup: the resubmit enqueues a fresh
    // retry job, and the campaign must track the retry's id — not
    // keep streaming the settled cancellation forever.
    ASSERT_TRUE(server.submitCampaign("camp", 0, specText, response));
    EXPECT_EQ(response,
              "ok submitted camp jobs=1 new=1 deduped=0 cached=0");
    EXPECT_NE(server.statusText().find("campaign camp jobs=1 settled=0"),
              std::string::npos)
        << server.statusText();
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEndToEnd, CampaignMatchesBatchDriverAndDedupes)
{
    const std::string dir = makeTempDir("e2e");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.driver.cacheDir = dir + "/cache";
    opts.journalPath = dir + "/journal";
    opts.localWorkers = 0; // all execution on external workers
    serve::Server server(opts);
    server.start();

    // Two external workers, exactly like `sst worker --connect`.
    serve::WorkerOptions wopts;
    wopts.endpoint = server.endpoint();
    wopts.pollMs = 20;
    std::vector<std::thread> workers;
    std::vector<int> workerRc(2, -1);
    for (int i = 0; i < 2; ++i) {
        workers.emplace_back([&, i] {
            serve::WorkerOptions w = wopts;
            w.name = "tw-" + std::to_string(i);
            workerRc[i] = serve::runWorker(w);
        });
    }

    const std::string specText = "profiles = cholesky\nthreads = 2, 4\n";
    Request submit;
    submit.kind = Request::Kind::kSubmit;
    submit.campaign = "camp";
    submit.payload = specText;
    const std::string reply =
        requestLine(server.endpoint(), serve::serializeRequest(submit));
    EXPECT_EQ(reply, "ok submitted camp jobs=2 new=2 deduped=0 cached=0");

    waitForSettled(server, 2);

    // Duplicate submission: fully deduped, nothing re-runs.
    const std::string dupReply =
        requestLine(server.endpoint(), serve::serializeRequest(submit));
    EXPECT_EQ(dupReply,
              "ok submitted camp jobs=2 new=0 deduped=2 cached=0");

    Request results;
    results.kind = Request::Kind::kResults;
    results.campaign = "camp";
    results.wait = true;
    const Streamed streamed = streamRequest(
        server.endpoint(), serve::serializeRequest(results));
    EXPECT_EQ(streamed.first, "ok results camp csv");
    EXPECT_EQ(streamed.end, "end complete 2/2");

    // The streamed campaign is bit-identical to the batch driver.
    const ExperimentSpec spec = parseSpec(specText);
    const std::vector<JobSpec> jobs = expandGrid(specGrid(spec));
    DriverOptions refOpts; // no cache: fresh execution
    const std::vector<JobResult> refResults =
        runExperimentBatch(jobs, refOpts);
    EXPECT_EQ(streamed.body, sweepCsv(jobs, refResults));

    // Drain: workers observe it and exit 0.
    EXPECT_EQ(requestLine(server.endpoint(), "drain"), "ok draining");
    for (std::thread &t : workers)
        t.join();
    EXPECT_EQ(workerRc[0], 0);
    EXPECT_EQ(workerRc[1], 0);
    EXPECT_TRUE(server.finished());
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEndToEnd, RestartResumesFromJournalAndCache)
{
    const std::string dir = makeTempDir("restart");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.driver.cacheDir = dir + "/cache";
    opts.journalPath = dir + "/journal";
    opts.localWorkers = 1;

    std::string firstBody;
    {
        serve::Server server(opts);
        server.start();
        std::string response;
        ASSERT_TRUE(server.submitCampaign(
            "camp", 0, "profiles = cholesky\nthreads = 2\n", response));
        EXPECT_EQ(response,
                  "ok submitted camp jobs=1 new=1 deduped=0 cached=0");
        waitForSettled(server, 1);
        const Streamed s = streamRequest(server.endpoint(),
                                         "results camp csv nowait");
        EXPECT_EQ(s.end, "end complete 1/1");
        firstBody = s.body;
        server.stop(); // no drain: the campaign is deliberately "live"
    }

    // A fresh server on the same journal + cache reconstructs the
    // campaign and fulfils every already-run job from the cache —
    // without any worker attached.
    serve::ServerOptions resumed = opts;
    resumed.localWorkers = 0;
    serve::Server server(resumed);
    server.start();
    EXPECT_EQ(server.queue().stats().done, 1u);

    const Streamed s =
        streamRequest(server.endpoint(), "results camp csv nowait");
    EXPECT_EQ(s.end, "end complete 1/1");
    EXPECT_NE(s.body.find(",cached,"), std::string::npos);

    // Identical metrics; only the status column records the cache hit.
    std::string expected = firstBody;
    const std::size_t pos = expected.find(",ok,");
    ASSERT_NE(pos, std::string::npos);
    expected.replace(pos, 4, ",cached,");
    EXPECT_EQ(s.body, expected);

    // And resubmitting the same campaign is a full dedup.
    std::string response;
    ASSERT_TRUE(server.submitCampaign(
        "camp", 0, "profiles = cholesky\nthreads = 2\n", response));
    EXPECT_EQ(response,
              "ok submitted camp jobs=1 new=0 deduped=1 cached=0");
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEndToEnd, KilledWorkerLeaseExpiresAndJobCompletes)
{
    const std::string dir = makeTempDir("killed");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.driver.cacheDir.clear(); // force real execution
    opts.localWorkers = 0;
    opts.queue.leaseMs = 300;
    opts.reaperIntervalMs = 50;
    serve::Server server(opts);
    server.start();

    std::string response;
    ASSERT_TRUE(server.submitCampaign(
        "camp", 0, "profiles = cholesky\nthreads = 2\n", response));

    // A "worker" leases the job and is then killed: no heartbeat, no
    // completion. (Raw protocol, exactly what a SIGKILLed process
    // leaves behind.)
    const std::string lease =
        requestLine(server.endpoint(), "lease zombie");
    ASSERT_EQ(lease.rfind("ok job ", 0), 0u) << lease;

    // The reaper expires the lease and requeues; a live worker then
    // picks the job up and the campaign still completes.
    serve::WorkerOptions wopts;
    wopts.endpoint = server.endpoint();
    wopts.name = "survivor";
    wopts.pollMs = 20;
    int rc = -1;
    std::thread worker([&] { rc = serve::runWorker(wopts); });

    waitForSettled(server, 1);
    EXPECT_GE(server.queue().stats().requeues, 1u);

    const Streamed s =
        streamRequest(server.endpoint(), "results camp csv nowait");
    EXPECT_EQ(s.end, "end complete 1/1");
    EXPECT_NE(s.body.find(",ok,"), std::string::npos)
        << "job must complete despite the killed worker: " << s.body;

    // The zombie's late completion attempt is rejected as stale.
    const std::vector<std::string> tokens = serve::splitTokens(lease);
    ASSERT_GE(tokens.size(), 3u);
    JobResult fake = okResult();
    Request done;
    done.kind = Request::Kind::kDone;
    done.worker = "zombie";
    done.jobId = std::stoull(tokens[2]);
    done.payload = serve::encodeJobResult(fake);
    EXPECT_EQ(requestLine(server.endpoint(),
                          serve::serializeRequest(done)),
              "err stale");

    requestLine(server.endpoint(), "drain");
    worker.join();
    EXPECT_EQ(rc, 0);
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEndToEnd, MetricsVerbAndWorkerStatusLines)
{
    const std::string dir = makeTempDir("metrics");
    serve::ServerOptions opts;
    opts.endpoint.path = dir + "/sock";
    opts.localWorkers = 1;
    serve::Server server(opts);
    // The registry is process-global and earlier tests ran servers too;
    // reset so this test's counts are exact. start() re-enables it.
    telemetry::Registry::global().reset();
    server.start();

    std::string response;
    ASSERT_TRUE(server.submitCampaign(
        "camp", 0, "profiles = cholesky\nthreads = 2\n", response));
    waitForSettled(server, 1);

    // The metrics verb streams the exposition: queue gauges, the
    // per-worker counters and the serve done totals must all be there.
    const Streamed metrics = streamRequest(server.endpoint(), "metrics");
    EXPECT_EQ(metrics.first, "ok metrics");
    EXPECT_EQ(metrics.end, "end");
    EXPECT_NE(metrics.body.find("sst_serve_jobs_done_total 1\n"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(metrics.body.find(
                  "sst_serve_worker_done_total{worker=\"local-0\"} 1\n"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(metrics.body.find("sst_serve_queue_jobs{state=\"done\"} 1\n"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(metrics.body.find("# TYPE sst_sim_events_total counter"),
              std::string::npos)
        << metrics.body;

    // status now carries one line per worker with lifetime counters.
    const std::string status = server.statusText();
    EXPECT_NE(status.find("worker local-0 leases="), std::string::npos)
        << status;
    EXPECT_NE(status.find("done=1"), std::string::npos) << status;

    server.stop();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace sst
