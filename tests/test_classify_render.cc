/**
 * @file
 * Unit tests for classification (Figure 6 logic) and stack rendering.
 */

#include <gtest/gtest.h>

#include "core/classify.hh"
#include "core/render.hh"

namespace sst {
namespace {

SpeedupStack
makeStack(double yield, double neg_llc, double neg_mem, double spin)
{
    SpeedupStack s;
    s.nthreads = 16;
    s.yield = yield;
    s.negLlc = neg_llc;
    s.negMem = neg_mem;
    s.spin = spin;
    s.baseSpeedup = 16.0 - yield - neg_llc - neg_mem - spin;
    s.estimatedSpeedup = s.baseSpeedup;
    return s;
}

TEST(Classify, SpeedupThresholdsMatchPaper)
{
    EXPECT_EQ(classifySpeedup(15.9), ScalingClass::kGood);
    EXPECT_EQ(classifySpeedup(10.0), ScalingClass::kGood);
    EXPECT_EQ(classifySpeedup(9.99), ScalingClass::kModerate);
    EXPECT_EQ(classifySpeedup(5.0), ScalingClass::kModerate);
    EXPECT_EQ(classifySpeedup(4.99), ScalingClass::kPoor);
    EXPECT_EQ(classifySpeedup(2.9), ScalingClass::kPoor);
}

TEST(Classify, RanksDelimitersByMagnitude)
{
    const SpeedupStack s = makeStack(8.0, 2.0, 3.0, 0.5);
    const auto ranked = rankedDelimiters(s);
    ASSERT_EQ(ranked.size(), 4u);
    EXPECT_EQ(ranked[0], StackComponent::kYield);
    EXPECT_EQ(ranked[1], StackComponent::kNegMem);
    EXPECT_EQ(ranked[2], StackComponent::kNegLlcNet);
    EXPECT_EQ(ranked[3], StackComponent::kSpin);
}

TEST(Classify, DropsNegligibleComponents)
{
    const SpeedupStack s = makeStack(8.0, 0.1, 0.05, 0.0);
    const auto ranked = rankedDelimiters(s, 0.25);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0], StackComponent::kYield);
}

TEST(Classify, CacheRanksByGrossNegativeInterference)
{
    // Gross negative 2.0 ranks even if positive interference nets it
    // out (removing all negative sharing recovers the gross value).
    SpeedupStack s = makeStack(0.5, 2.0, 0.0, 0.0);
    s.posLlc = 1.9;
    const auto ranked = rankedDelimiters(s);
    ASSERT_GE(ranked.size(), 1u);
    EXPECT_EQ(ranked[0], StackComponent::kNegLlcNet);
}

TEST(Classify, BenchmarkRowLimitsToThree)
{
    const SpeedupStack s = makeStack(5.0, 2.0, 1.5, 1.0);
    const ClassifiedBenchmark row =
        classifyBenchmark("x", "suite", 4.5, s);
    EXPECT_EQ(row.scaling, ScalingClass::kPoor);
    EXPECT_EQ(row.delimiters.size(), 3u);
}

TEST(Classify, TreeGroupsByClassAndSortsBySpeedup)
{
    std::vector<ClassifiedBenchmark> rows;
    rows.push_back(classifyBenchmark("slow", "s", 3.0,
                                     makeStack(12, 0, 0, 0)));
    rows.push_back(classifyBenchmark("fast", "s", 15.0,
                                     makeStack(1, 0, 0, 0)));
    rows.push_back(classifyBenchmark("mid", "s", 7.0,
                                     makeStack(9, 0, 0, 0)));
    const std::string tree = renderClassificationTree(rows);
    const auto fast = tree.find("fast");
    const auto mid = tree.find("mid");
    const auto slow = tree.find("slow");
    ASSERT_NE(fast, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(slow, std::string::npos);
    EXPECT_LT(fast, mid);
    EXPECT_LT(mid, slow);
    EXPECT_NE(tree.find("good"), std::string::npos);
    EXPECT_NE(tree.find("moderate"), std::string::npos);
    EXPECT_NE(tree.find("poor"), std::string::npos);
}

TEST(Render, StackTableShowsComponentsAndTotals)
{
    SpeedupStack s = makeStack(4.0, 1.0, 0.5, 0.0);
    const std::string out = renderStackTable(s, 10.2);
    EXPECT_NE(out.find("yielding"), std::string::npos);
    EXPECT_NE(out.find("estimated speedup"), std::string::npos);
    EXPECT_NE(out.find("10.2"), std::string::npos);
}

TEST(Render, BarsHaveLegendAndLabels)
{
    SpeedupStack s = makeStack(4.0, 1.0, 0.5, 0.2);
    const std::string out = renderStackBars({s, s}, {"a16", "b16"}, 12);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("a16"), std::string::npos);
    EXPECT_NE(out.find("b16"), std::string::npos);
    EXPECT_NE(out.find("base speedup"), std::string::npos);
}

TEST(Render, CsvHasOneRowPerStack)
{
    SpeedupStack s = makeStack(4.0, 1.0, 0.5, 0.2);
    const std::string csv = renderStacksCsv({s, s, s}, {"a", "b", "c"});
    int newlines = 0;
    for (const char ch : csv)
        newlines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(newlines, 4); // header + 3 rows
}

TEST(Render, EmptyStacksRenderEmpty)
{
    EXPECT_EQ(renderStackBars({}, {}), "");
}

} // namespace
} // namespace sst
