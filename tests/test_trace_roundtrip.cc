/**
 * @file
 * End-to-end trace round-trip tests: recording a run and replaying it
 * from the binary trace must reproduce the live results bit for bit —
 * execution times, speedup-stack components and every per-thread
 * accounting counter — across profiles and thread counts. Also covers
 * the driver's --trace-dir mode: replayed batches match live batches,
 * missing traces fall back to generation, and stale traces fail loudly.
 */

#include <filesystem>
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "driver/driver.hh"
#include "trace/trace_run.hh"
#include "tests/test_util.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

std::string
freshTempDir(const char *name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "sst_trace_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

void
expectSameCounters(const ThreadCounters &a, const ThreadCounters &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.spinInstructions, b.spinInstructions);
    EXPECT_EQ(a.llcLoadMissStall, b.llcLoadMissStall);
    EXPECT_EQ(a.llcLoadMisses, b.llcLoadMisses);
    EXPECT_EQ(a.negLlcSampledStall, b.negLlcSampledStall);
    EXPECT_EQ(a.interThreadMissesSampled, b.interThreadMissesSampled);
    EXPECT_EQ(a.interThreadHitsSampled, b.interThreadHitsSampled);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.atdSampledAccesses, b.atdSampledAccesses);
    EXPECT_EQ(a.busWaitOther, b.busWaitOther);
    EXPECT_EQ(a.bankWaitOther, b.bankWaitOther);
    EXPECT_EQ(a.pageConflictOther, b.pageConflictOther);
    EXPECT_EQ(a.spinDetectedTian, b.spinDetectedTian);
    EXPECT_EQ(a.spinDetectedLi, b.spinDetectedLi);
    EXPECT_EQ(a.yieldCycles, b.yieldCycles);
    EXPECT_EQ(a.coherencyMisses, b.coherencyMisses);
    EXPECT_EQ(a.gtLockSpin, b.gtLockSpin);
    EXPECT_EQ(a.gtBarrierSpin, b.gtBarrierSpin);
    EXPECT_EQ(a.gtLockYield, b.gtLockYield);
    EXPECT_EQ(a.gtBarrierYield, b.gtBarrierYield);
    EXPECT_EQ(a.gtPreemptYield, b.gtPreemptYield);
    EXPECT_EQ(a.gtMemWaitOther, b.gtMemWaitOther);
    EXPECT_EQ(a.finishTime, b.finishTime);
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.nthreads, b.nthreads);
    EXPECT_EQ(a.ncores, b.ncores);
    EXPECT_EQ(a.executionTime, b.executionTime);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.totalSpinInstructions, b.totalSpinInstructions);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t)
        expectSameCounters(a.threads[t], b.threads[t]);
    EXPECT_EQ(a.regions.size(), b.regions.size());
}

void
expectSameExperiment(const SpeedupExperiment &a,
                     const SpeedupExperiment &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.nthreads, b.nthreads);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.tp, b.tp);
    // Bit-identical, not approximately equal: replay is exact.
    EXPECT_EQ(a.actualSpeedup, b.actualSpeedup);
    EXPECT_EQ(a.estimatedSpeedup, b.estimatedSpeedup);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.parOverheadMeasured, b.parOverheadMeasured);
    EXPECT_EQ(a.stack.baseSpeedup, b.stack.baseSpeedup);
    EXPECT_EQ(a.stack.posLlc, b.stack.posLlc);
    EXPECT_EQ(a.stack.negLlc, b.stack.negLlc);
    EXPECT_EQ(a.stack.negMem, b.stack.negMem);
    EXPECT_EQ(a.stack.spin, b.stack.spin);
    EXPECT_EQ(a.stack.yield, b.stack.yield);
    EXPECT_EQ(a.stack.imbalance, b.stack.imbalance);
    EXPECT_EQ(a.stack.coherency, b.stack.coherency);
    expectSameRun(a.single, b.single);
    expectSameRun(a.parallel, b.parallel);
}

/**
 * Record -> replay for one (profile, nthreads) point and demand
 * bit-identical results everywhere.
 */
void
roundTrip(const std::string &dir, const BenchmarkProfile &profile,
          int nthreads)
{
    SCOPED_TRACE(profile.label() + " @" + std::to_string(nthreads));
    const std::string path = tracePathFor(dir, profile, nthreads);
    const SimParams params;

    const SpeedupExperiment live =
        recordSpeedupTrace(params, profile, nthreads, path);
    const SpeedupExperiment replayed = replaySpeedupTrace(params, path);
    expectSameExperiment(live, replayed);

    // The recording shim must also be transparent: the live experiment
    // measured while recording equals a plain run without the shim.
    expectSameExperiment(
        live, runSpeedupExperiment(params, profile, nthreads));
}

// Three Figure-6 profiles spanning the behaviour classes (good /
// lock-spin / barrier-imbalance scaling), each at 1, 4 and 16 threads
// — the satellite's ">= 3 profiles x {1, 4, 16}" matrix.
TEST(TraceRoundTrip, CholeskyMatchesLiveBitForBit)
{
    const std::string dir = freshTempDir("rt_cholesky");
    for (const int n : {1, 4, 16})
        roundTrip(dir, profileByLabel("cholesky"), n);
    std::filesystem::remove_all(dir);
}

TEST(TraceRoundTrip, RadixMatchesLiveBitForBit)
{
    const std::string dir = freshTempDir("rt_radix");
    for (const int n : {1, 4, 16})
        roundTrip(dir, profileByLabel("radix"), n);
    std::filesystem::remove_all(dir);
}

TEST(TraceRoundTrip, FftMatchesLiveBitForBit)
{
    const std::string dir = freshTempDir("rt_fft");
    for (const int n : {1, 4, 16})
        roundTrip(dir, profileByLabel("fft"), n);
    std::filesystem::remove_all(dir);
}

// ---- driver --trace-dir ----------------------------------------------------

JobSpec
makeJob(const BenchmarkProfile &profile, int nthreads)
{
    return JobSpec::forProfile(profile, nthreads);
}

TEST(DriverTrace, BatchReplaysFromTraceDirAndMatchesLive)
{
    const std::string dir = freshTempDir("driver_replay");
    const std::vector<JobSpec> specs = {
        makeJob(test::computeOnlyProfile(), 2),
        makeJob(test::lockHeavyProfile(), 4),
        makeJob(test::barrierHeavyProfile(), 2)};

    const SimParams params;
    for (const JobSpec &s : specs) {
        const BenchmarkProfile &profile = s.workload.groups[0].profile;
        recordSpeedupTrace(params, profile, s.nthreads(),
                           tracePathFor(dir, profile, s.nthreads()));
    }

    DriverOptions live;
    live.jobs = 2;
    const std::vector<JobResult> fresh = runExperimentBatch(specs, live);

    DriverOptions traced = live;
    traced.traceDir = dir;
    BatchStats stats;
    const std::vector<JobResult> replayed =
        runExperimentBatch(specs, traced, &stats);

    EXPECT_EQ(stats.traceReplays, specs.size());
    EXPECT_EQ(stats.executed, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(replayed[i].ok()) << replayed[i].error;
        EXPECT_TRUE(replayed[i].tracedReplay);
        expectSameExperiment(replayed[i].exp, fresh[i].exp);
    }
    std::filesystem::remove_all(dir);
}

TEST(DriverTrace, MissingTraceFallsBackToLiveGeneration)
{
    const std::string dir = freshTempDir("driver_fallback");
    DriverOptions opts;
    opts.traceDir = dir; // exists but holds no recordings
    BatchStats stats;
    const std::vector<JobResult> results = runExperimentBatch(
        {makeJob(test::computeOnlyProfile(), 2)}, opts, &stats);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_FALSE(results[0].tracedReplay);
    EXPECT_EQ(stats.traceReplays, 0u);
    EXPECT_EQ(stats.executed, 1u);
    std::filesystem::remove_all(dir);
}

TEST(DriverTrace, SeedOffsetLooksUpItsOwnRecording)
{
    // An offset-0 recording must not be picked up by an offset-1 job
    // (different op streams): the job falls back to live generation.
    const std::string dir = freshTempDir("driver_seed_offset");
    const BenchmarkProfile profile = test::computeOnlyProfile();
    recordSpeedupTrace(SimParams{}, profile, 2,
                       tracePathFor(dir, profile, 2));

    JobSpec offset = makeJob(profile, 2);
    offset.seedOffset = 1;
    DriverOptions opts;
    opts.traceDir = dir;
    BatchStats stats;
    const std::vector<JobResult> results =
        runExperimentBatch({offset}, opts, &stats);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_FALSE(results[0].tracedReplay);
    EXPECT_EQ(stats.traceReplays, 0u);
    std::filesystem::remove_all(dir);
}

TEST(DriverTrace, StaleTraceFailsTheJobLoudly)
{
    const std::string dir = freshTempDir("driver_stale");
    BenchmarkProfile profile = test::computeOnlyProfile();
    recordSpeedupTrace(SimParams{}, profile, 2,
                       tracePathFor(dir, profile, 2));

    // Same label, different op streams: the recording is now stale.
    profile.seed += 1;
    DriverOptions opts;
    opts.traceDir = dir;
    const std::vector<JobResult> results =
        runExperimentBatch({makeJob(profile, 2)}, opts);
    ASSERT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("profile mismatch"),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace sst
