/**
 * @file
 * Integration tests of the experiment runner and end-to-end validation
 * bounds on real suite profiles (a compressed version of the paper's
 * Section 6 validation).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

TEST(Experiment, ReusesBaselineAcrossThreadCounts)
{
    const BenchmarkProfile &p = profileByLabel("blackscholes_small");
    SimParams params;
    const RunResult baseline = runSingleThreaded(params, p);
    const SpeedupExperiment e2 =
        runWithBaseline(params, p, 2, baseline);
    const SpeedupExperiment e4 =
        runWithBaseline(params, p, 4, baseline);
    EXPECT_EQ(e2.ts, e4.ts);
    EXPECT_GT(e4.actualSpeedup, e2.actualSpeedup);
}

TEST(Experiment, StackAlwaysSumsToHeight)
{
    for (const char *label : {"cholesky", "facesim_small", "radix"}) {
        const BenchmarkProfile &p = profileByLabel(label);
        SimParams params;
        params.ncores = 8;
        const SpeedupExperiment exp = runSpeedupExperiment(params, p, 8);
        EXPECT_TRUE(exp.stack.sumsToHeight(1e-6)) << label;
        EXPECT_EQ(exp.stack.nthreads, 8);
    }
}

TEST(Experiment, SuiteRegistryComplete)
{
    EXPECT_EQ(benchmarkSuite().size(), 28u);
    EXPECT_EQ(allProfileLabels().size(), 28u);
    // Paper composition: 12 PARSEC rows, 7 SPLASH-2, 5 Rodinia... count
    // by suite to catch registry regressions.
    int parsec = 0, splash = 0, rodinia = 0;
    for (const auto &p : benchmarkSuite()) {
        parsec += p.suite == "parsec";
        splash += p.suite == "splash2";
        rodinia += p.suite == "rodinia";
    }
    EXPECT_EQ(parsec + splash + rodinia, 28);
    EXPECT_EQ(splash, 7);
    EXPECT_EQ(rodinia, 5);
    EXPECT_EQ(parsec, 16);
}

TEST(Experiment, LookupByLabelAndName)
{
    EXPECT_EQ(profileByLabel("cholesky").name, "cholesky");
    EXPECT_EQ(profileByLabel("facesim_medium").input, "medium");
    EXPECT_EQ(profileByLabel("facesim").name, "facesim");
    EXPECT_DEATH(profileByLabel("nonexistent"), "unknown benchmark");
}

/** Compressed Section 6 validation: estimation error within sane bounds
 *  for a representative subset at 8 and 16 threads. */
class ValidationSweep
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ValidationSweep, ErrorWithinBounds)
{
    const auto [label, nthreads] = GetParam();
    const BenchmarkProfile &p = profileByLabel(label);
    SimParams params;
    params.ncores = nthreads;
    const SpeedupExperiment exp =
        runSpeedupExperiment(params, p, nthreads);

    EXPECT_GT(exp.actualSpeedup, 1.0);
    EXPECT_LE(exp.actualSpeedup, nthreads * 1.05);
    EXPECT_GT(exp.estimatedSpeedup, 0.0);
    // The paper's worst case is 22%; leave headroom for the subset.
    EXPECT_LT(std::fabs(exp.error), 0.25)
        << label << " @ " << nthreads << ": actual "
        << exp.actualSpeedup << " estimated " << exp.estimatedSpeedup;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, ValidationSweep,
    ::testing::Combine(::testing::Values("blackscholes_small", "cholesky",
                                         "facesim_small", "lud",
                                         "ferret_small", "canneal_small"),
                       ::testing::Values(8, 16)));

TEST(Experiment, PaperSpeedupReproduced16Threads)
{
    // The headline reproduction: every profile's measured speedup at 16
    // threads lands within 10% (relative) of the paper's Figure 6 value.
    for (const char *label :
         {"blackscholes_medium", "cholesky", "facesim_medium",
          "ferret_small", "swaptions_medium", "needle"}) {
        const BenchmarkProfile &p = profileByLabel(label);
        SimParams params;
        params.ncores = 16;
        const SpeedupExperiment exp = runSpeedupExperiment(params, p, 16);
        EXPECT_NEAR(exp.actualSpeedup, p.paperSpeedup16,
                    0.10 * p.paperSpeedup16)
            << label;
    }
}

} // namespace
} // namespace sst
