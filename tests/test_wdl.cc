/**
 * @file
 * Tests of the WDL workload description language: parser/IR golden
 * properties (canonical text is a fixed point), file:line diagnostics,
 * deterministic op-stream compilation (kEnd exactly once, identical
 * streams on re-enumeration), zipfian key skew, result determinism
 * across driver worker pools, record -> replay bit-identity, and
 * fingerprint stability (content-addressed, never path-addressed).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "driver/fingerprint.hh"
#include "spec/spec.hh"
#include "trace/trace_run.hh"
#include "wdl/wdl.hh"
#include "workload/op.hh"
#include "workload/workload_spec.hh"

namespace sst {
namespace {

/** Two small groups contending on a shared zipfian lock table — the
 *  cross-group scenario no registered profile expresses. */
constexpr const char *kContention = R"(
wdl 1
workload "t-contention"
seed 11
lock keys[16]

group hot threads=2 private=16K {
  loop 40 {
    txn txn_ops=4 rw_ratio=0.5 locks=keys zipf(0.9) compute=10 memory=1
  }
}

group cold threads=2 private=16K {
  loop 40 {
    txn txn_ops=4 rw_ratio=0.5 locks=keys zipf(0.0) compute=10 memory=1
  }
}
)";

/** A replicated barrier-phased group exercising every statement kind. */
constexpr const char *kPhased = R"(
wdl 1
workload "t-phased"
seed 3
lock guard
barrier sync

group main threads=4 private=32K shared=64K {
  loop 2 each {
    phase {
      loop 80 {
        compute uniform(20, 40)
        memory 2
        memory 1 shared store=0.25
      }
    }
    barrier sync
    lock guard {
      compute 15
      memory 2 data
    }
    yield
  }
}
)";

WorkloadSpec
specFromText(const std::string &text, const std::string &virtual_path)
{
    auto prog = std::make_shared<const wdl::Program>(
        wdl::parseProgram(text, virtual_path));
    return wdl::toWorkloadSpec(prog, virtual_path);
}

std::string
writeTemp(const std::string &name, const std::string &text)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    out.close();
    return path;
}

/** Enumerate one thread's stream; asserts kEnd arrives exactly once
 *  and the source then stays finished. */
std::vector<Op>
drain(const OpSourceFactory &factory, ThreadId tid, int nthreads)
{
    std::unique_ptr<OpSource> src = factory(tid, nthreads);
    std::vector<Op> ops;
    for (int guard = 0; guard < 2'000'000; ++guard) {
        const Op op = src->nextOp();
        if (op.type == OpType::kEnd)
            break;
        ops.push_back(op);
    }
    EXPECT_TRUE(src->finished());
    EXPECT_EQ(src->nextOp().type, OpType::kEnd); // end forever after
    return ops;
}

bool
sameOps(const std::vector<Op> &a, const std::vector<Op> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].type != b[i].type || a[i].count != b[i].count ||
            a[i].addr != b[i].addr || a[i].pc != b[i].pc ||
            a[i].id != b[i].id)
            return false;
    }
    return true;
}

void
expectSameExperiment(const SpeedupExperiment &a, const SpeedupExperiment &b)
{
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_DOUBLE_EQ(a.actualSpeedup, b.actualSpeedup);
    EXPECT_DOUBLE_EQ(a.estimatedSpeedup, b.estimatedSpeedup);
    EXPECT_DOUBLE_EQ(a.stack.baseSpeedup, b.stack.baseSpeedup);
    EXPECT_DOUBLE_EQ(a.stack.spin, b.stack.spin);
    EXPECT_DOUBLE_EQ(a.stack.yield, b.stack.yield);
    EXPECT_DOUBLE_EQ(a.stack.imbalance, b.stack.imbalance);
    EXPECT_DOUBLE_EQ(a.stack.negLlc, b.stack.negLlc);
    EXPECT_DOUBLE_EQ(a.stack.negMem, b.stack.negMem);
}

// ---- parser / IR -----------------------------------------------------------

TEST(WdlParser, ParsesContentionScenario)
{
    const wdl::Program prog = wdl::parseProgram(kContention, "t.wdl");
    EXPECT_EQ(prog.name, "t-contention");
    EXPECT_EQ(prog.role, WorkloadRole::kMix); // 2 groups default to mix
    ASSERT_EQ(prog.locks.size(), 1u);
    EXPECT_EQ(prog.locks[0].name, "keys");
    EXPECT_EQ(prog.locks[0].size, 16u);
    ASSERT_EQ(prog.groups.size(), 2u);
    EXPECT_EQ(prog.groups[0].name, "hot");
    EXPECT_EQ(prog.groups[0].nthreads, 2);
    EXPECT_EQ(prog.groups[1].name, "cold");
    EXPECT_EQ(prog.groups[0].seed, 11u);
}

TEST(WdlParser, CanonicalTextIsAFixedPoint)
{
    for (const char *text : {kContention, kPhased}) {
        const wdl::Program prog = wdl::parseProgram(text, "t.wdl");
        const std::string canon = prog.canonicalText();
        const wdl::Program again = wdl::parseProgram(canon, "canon.wdl");
        EXPECT_EQ(again.canonicalText(), canon);
        EXPECT_EQ(again.irHash(), prog.irHash());
    }
}

TEST(WdlParser, SingleGroupNormalizesToReplicated)
{
    const wdl::Program prog = wdl::parseProgram(kPhased, "t.wdl");
    EXPECT_EQ(prog.role, WorkloadRole::kReplicated);
    ASSERT_EQ(prog.groups.size(), 1u);
    EXPECT_EQ(prog.groups[0].nthreads, 4);
}

// ---- diagnostics -----------------------------------------------------------

void
expectParseError(const std::string &text, const char *needle,
                 const char *line_marker)
{
    try {
        wdl::parseProgram(text, "bad.wdl");
        FAIL() << "expected std::invalid_argument for: " << needle;
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bad.wdl:"), std::string::npos) << msg;
        EXPECT_NE(msg.find(needle), std::string::npos) << msg;
        if (line_marker) {
            EXPECT_NE(msg.find(line_marker), std::string::npos) << msg;
        }
    }
}

TEST(WdlDiagnostics, UnknownStatementNamesFileLineAndToken)
{
    expectParseError("wdl 1\ngroup g threads=1 {\n  frobnicate 3\n}\n",
                     "unknown statement", "bad.wdl:3");
}

TEST(WdlDiagnostics, UndefinedLockListsDeclaredNames)
{
    expectParseError("wdl 1\nlock a\ngroup g threads=1 {\n"
                     "  lock nope { compute 1 }\n}\n",
                     "nope", "bad.wdl:4");
}

TEST(WdlDiagnostics, TruncatedFileReportsOpenBlock)
{
    expectParseError("wdl 1\ngroup g threads=1 {\n  compute 5\n",
                     "not closed", "end of file");
}

TEST(WdlDiagnostics, ScalarLockRejectsSelector)
{
    expectParseError("wdl 1\nlock l\ngroup g threads=1 {\n"
                     "  lock l[zipf(0.5)] { compute 1 }\n}\n",
                     "scalar", nullptr);
}

TEST(WdlDiagnostics, SyncInsideCriticalSectionRejected)
{
    expectParseError("wdl 1\nlock l\ngroup g threads=2 {\n"
                     "  lock l { yield }\n}\n",
                     "", "bad.wdl:");
}

// ---- compiled op streams ---------------------------------------------------

TEST(WdlCompiler, StreamsAreDeterministicAndEndOnce)
{
    const WorkloadSpec spec = specFromText(kPhased, "t.wdl");
    const OpSourceFactory factory = workloadOpSources(spec);
    for (int tid = 0; tid < spec.nthreads(); ++tid) {
        const std::vector<Op> first = drain(factory, tid, spec.nthreads());
        const std::vector<Op> second = drain(factory, tid, spec.nthreads());
        EXPECT_FALSE(first.empty());
        EXPECT_TRUE(sameOps(first, second)) << "tid " << tid;
    }
}

TEST(WdlCompiler, ZipfSkewsLockKeys)
{
    // Share of acquisitions hitting the hottest key: strongly
    // concentrated at theta 0.9, near-uniform (~1/16) at theta 0.
    const WorkloadSpec spec = specFromText(kContention, "t.wdl");
    const OpSourceFactory factory = workloadOpSources(spec);
    auto hotShare = [&](ThreadId tid) {
        std::map<int, int> counts;
        int total = 0;
        for (const Op &op : drain(factory, tid, spec.nthreads())) {
            if (op.type == OpType::kLockAcquire) {
                ++counts[op.id];
                ++total;
            }
        }
        int hottest = 0;
        for (const auto &kv : counts)
            hottest = std::max(hottest, kv.second);
        EXPECT_GT(total, 0);
        return static_cast<double>(hottest) / total;
    };
    EXPECT_GT(hotShare(0), 0.25);  // zipf(0.9) group
    EXPECT_LT(hotShare(2), 0.25);  // zipf(0.0) group
}

TEST(WdlCompiler, BaselineStreamsHaveNoSyncOps)
{
    const WorkloadSpec spec = specFromText(kContention, "t.wdl");
    for (int g = 0; g < spec.ngroups(); ++g) {
        const std::vector<Op> ops =
            drain(workloadGroupBaselineSources(spec, g), 0, 1);
        EXPECT_FALSE(ops.empty());
        for (const Op &op : ops) {
            EXPECT_NE(op.type, OpType::kLockAcquire);
            EXPECT_NE(op.type, OpType::kLockRelease);
            EXPECT_NE(op.type, OpType::kBarrier);
        }
    }
}

// ---- driver / record / replay ----------------------------------------------

JobSpec
wdlJob(const char *text)
{
    JobSpec job;
    job.workload = specFromText(text, "t.wdl");
    return job;
}

TEST(WdlDriver, ResultsIdenticalAcrossWorkerCounts)
{
    const std::vector<JobSpec> jobs = {wdlJob(kContention),
                                       wdlJob(kPhased)};
    DriverOptions serial;
    serial.jobs = 1;
    DriverOptions parallel;
    parallel.jobs = 4;
    const std::vector<JobResult> r1 = runExperimentBatch(jobs, serial);
    const std::vector<JobResult> r4 = runExperimentBatch(jobs, parallel);
    ASSERT_EQ(r1.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(r1[i].ok()) << r1[i].error;
        ASSERT_TRUE(r4[i].ok()) << r4[i].error;
        expectSameExperiment(r1[i].exp, r4[i].exp);
    }
}

TEST(WdlTrace, RecordThenReplayIsBitIdentical)
{
    const WorkloadSpec workload = specFromText(kContention, "t.wdl");
    const std::string path =
        (std::filesystem::temp_directory_path() / "t_wdl_trace.sstt")
            .string();
    const SimParams params;
    const SpeedupExperiment live =
        recordSpeedupTrace(params, workload, path);
    const SpeedupExperiment replayed = replaySpeedupTrace(params, path);
    expectSameExperiment(live, replayed);
    std::remove(path.c_str());
}

// ---- fingerprints ----------------------------------------------------------

TEST(WdlFingerprint, HashesContentNotPath)
{
    const std::string a = writeTemp("t_wdl_fp_a.wdl", kContention);
    const std::string b = writeTemp("t_wdl_fp_b.wdl", kContention);
    JobSpec ja, jb;
    ja.workload = wdl::loadWorkloadFile(a);
    jb.workload = wdl::loadWorkloadFile(b);
    EXPECT_EQ(fingerprintJob(ja).canonical, fingerprintJob(jb).canonical);
    EXPECT_EQ(fingerprintWorkloadGroupBaseline(ja.params, ja.workload, 0)
                  .canonical,
              fingerprintWorkloadGroupBaseline(jb.params, jb.workload, 0)
                  .canonical);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(WdlFingerprint, DifferentThetaDifferentFingerprint)
{
    std::string low = kContention;
    const std::size_t at = low.find("zipf(0.9)");
    ASSERT_NE(at, std::string::npos);
    low.replace(at, 9, "zipf(0.1)");
    JobSpec hot = wdlJob(kContention);
    JobSpec cool;
    cool.workload = specFromText(low, "t.wdl");
    EXPECT_NE(fingerprintJob(hot).hash, fingerprintJob(cool).hash);
}

// ---- spec integration ------------------------------------------------------

TEST(WdlSpec, WorkloadFileKeyIsSugarForFrontend)
{
    const ExperimentSpec spec =
        parseSpec("workload-file = examples/workloads/contention.wdl\n");
    EXPECT_EQ(spec.frontend, "workload-file");
    ASSERT_EQ(spec.workloadFiles.size(), 1u);
    EXPECT_EQ(spec.workloadFiles[0],
              "examples/workloads/contention.wdl");
    // Canonical round trip.
    EXPECT_EQ(parseSpec(serializeSpec(spec)), spec);
}

TEST(WdlSpec, WorkloadFileExclusiveWithOtherAxes)
{
    ExperimentSpec spec;
    applySpecValue(spec, "workload-file", "a.wdl");
    EXPECT_THROW(applySpecValue(spec, "workload", "fig08_cholesky"),
                 std::invalid_argument);
    ExperimentSpec other;
    applySpecValue(other, "workload", "fig08_cholesky");
    EXPECT_THROW(applySpecValue(other, "workload-file", "a.wdl"),
                 std::invalid_argument);
    ExperimentSpec threads;
    applySpecValue(threads, "workload-file", "a.wdl");
    applySpecValue(threads, "threads", "2,4");
    EXPECT_THROW(validateSpec(threads), std::invalid_argument);
}

TEST(WdlSpec, SpecErrorsCarryLineAndOffendingText)
{
    try {
        parseSpec("threads = 4\nbogus line without equals\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bogus line without equals"),
                  std::string::npos)
            << msg;
    }
}

TEST(WdlSpec, SpecForJobRoundTripsThroughThePath)
{
    const std::string path = writeTemp("t_wdl_spec.wdl", kContention);
    JobSpec job;
    job.workload = wdl::loadWorkloadFile(path);
    const ExperimentSpec spec = specForJob(job);
    EXPECT_EQ(spec.frontend, "workload-file");
    ASSERT_EQ(spec.workloadFiles.size(), 1u);
    const std::vector<JobSpec> jobs = expandGrid(specGrid(spec));
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(fingerprintJob(jobs[0]).canonical,
              fingerprintJob(job).canonical);
    std::remove(path.c_str());
}

} // namespace
} // namespace sst
