/**
 * @file
 * Unit tests for the statistics helpers and text formatting.
 */

#include <gtest/gtest.h>

#include "util/format.hh"
#include "util/stats.hh"

namespace sst {
namespace {

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3); // sample stddev
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);  // clamps to bucket 0
    h.add(0.5);
    h.add(3.0);
    h.add(9.9);
    h.add(100.0); // clamps to last bucket
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 2u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"a", "bbbb"});
    t.addRow({"xxxx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a     bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxxx  y"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Format, Doubles)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(-1.0, 0), "-1");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.051, 1), "5.1%");
    EXPECT_EQ(fmtPercent(-0.25, 0), "-25%");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(fmtBytes(2 * 1024 * 1024), "2MB");
    EXPECT_EQ(fmtBytes(64 * 1024), "64KB");
    EXPECT_EQ(fmtBytes(952), "952B");
}

TEST(Format, Padding)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
}

} // namespace
} // namespace sst
