/**
 * @file
 * Unit and property tests for the DRAM model: bank/row mapping,
 * open-page timing, bus arbitration, interference attribution, ORA page
 * conflicts and the bus interval allocator.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace sst {
namespace {

DramParams
params()
{
    return DramParams{};
}

TEST(BusTimeline, NoWaitOnIdleBus)
{
    BusTimeline bus;
    CoreId blocker = kInvalidId;
    EXPECT_EQ(bus.reserve(100, 4, 0, blocker), 100u);
    EXPECT_EQ(blocker, kInvalidId);
}

TEST(BusTimeline, WaitsBehindReservation)
{
    BusTimeline bus;
    CoreId blocker;
    bus.reserve(100, 10, 0, blocker);
    EXPECT_EQ(bus.reserve(105, 4, 1, blocker), 110u);
    EXPECT_EQ(blocker, 0);
}

TEST(BusTimeline, FillsGapBetweenReservations)
{
    BusTimeline bus;
    CoreId blocker;
    bus.reserve(100, 4, 0, blocker);  // [100,104)
    bus.reserve(120, 4, 0, blocker);  // [120,124)
    // A 4-cycle request at 106 fits in the gap.
    EXPECT_EQ(bus.reserve(106, 4, 1, blocker), 106u);
}

TEST(BusTimeline, SkipsTooSmallGap)
{
    BusTimeline bus;
    CoreId blocker;
    bus.reserve(100, 4, 0, blocker);  // [100,104)
    bus.reserve(106, 4, 0, blocker);  // [106,110)
    // 4 cycles at 103: gap [104,106) too small -> goes after 110.
    EXPECT_EQ(bus.reserve(103, 4, 1, blocker), 110u);
}

TEST(BusTimeline, PruneDropsExpired)
{
    BusTimeline bus;
    CoreId blocker;
    bus.reserve(100, 4, 0, blocker);
    bus.reserve(104, 4, 0, blocker);
    EXPECT_EQ(bus.liveReservations(), 2u);
    bus.pruneBefore(108);
    EXPECT_EQ(bus.liveReservations(), 0u);
}

TEST(Dram, BankAndRowMapping)
{
    DramModel dram(2, params());
    EXPECT_EQ(dram.bankOf(0), 0);
    EXPECT_EQ(dram.bankOf(kLineBytes), 1);
    EXPECT_EQ(dram.bankOf(7 * kLineBytes), 7);
    EXPECT_EQ(dram.bankOf(8 * kLineBytes), 0);
    EXPECT_EQ(dram.rowOf(0), 0u);
    // 8 banks x 2048-byte rows: row increments every 8*32 lines.
    EXPECT_EQ(dram.rowOf(8 * 32 * kLineBytes), 1u);
}

TEST(Dram, RowHitFasterThanConflict)
{
    DramModel dram(1, params());
    const DramResult first = dram.access(0, 0, 0);
    // Same row again, long after: row hit.
    const DramResult hit = dram.access(0, 8 * kLineBytes, 1000);
    // Different row, same bank: conflict.
    const DramResult conflict =
        dram.access(0, 8 * 32 * kLineBytes, 2000);
    EXPECT_FALSE(hit.rowConflict);
    EXPECT_TRUE(conflict.rowConflict);
    EXPECT_LT(hit.serviceCycles, conflict.serviceCycles);
    EXPECT_GT(first.serviceCycles, 0u);
}

TEST(Dram, UncontendedLatencyComposition)
{
    const DramParams p = params();
    DramModel dram(1, p);
    dram.access(0, 0, 0); // open the row
    const DramResult hit = dram.access(0, 8 * kLineBytes, 1000);
    EXPECT_EQ(hit.serviceCycles,
              p.busCycles + p.rowHitCycles + p.dataCycles);
}

TEST(Dram, BusContentionAttributedToOtherCore)
{
    DramModel dram(2, params());
    dram.access(0, 0, 100);
    // Core 1 issues while core 0's request occupies the bus.
    const DramResult r = dram.access(1, kLineBytes, 101);
    EXPECT_GT(r.busWait, 0u);
    EXPECT_EQ(r.busWaitOther, r.busWait);
}

TEST(Dram, BankContentionAttributed)
{
    DramModel dram(2, params());
    dram.access(0, 0, 100);
    // Same bank (bank 0), issued right after: waits for the bank.
    const DramResult r = dram.access(1, 8 * kLineBytes, 100);
    EXPECT_GT(r.bankWaitOther, 0u);
}

TEST(Dram, OraAttributesPageConflictToOtherCore)
{
    DramModel dram(2, params());
    // Core 0 opens row 0 of bank 0.
    dram.access(0, 0, 0);
    // Core 1 opens a different row of bank 0.
    dram.access(1, 8 * 32 * kLineBytes, 1000);
    // Core 0 returns to its row: conflict caused by core 1.
    const DramResult r = dram.access(0, 0, 2000);
    EXPECT_TRUE(r.rowConflict);
    EXPECT_TRUE(r.pageConflictByOther);
    EXPECT_GT(r.pageConflictPenalty, 0u);
}

TEST(Dram, OwnPageConflictNotAttributed)
{
    DramModel dram(2, params());
    dram.access(0, 0, 0);
    // Core 0 itself opens another row in bank 0.
    dram.access(0, 8 * 32 * kLineBytes, 1000);
    // Returning to row 0: conflict, but caused by core 0 itself.
    const DramResult r = dram.access(0, 0, 2000);
    EXPECT_TRUE(r.rowConflict);
    EXPECT_FALSE(r.pageConflictByOther);
}

TEST(Dram, ResetStatsZeroes)
{
    DramModel dram(1, params());
    dram.access(0, 0, 0);
    dram.resetStats();
    EXPECT_EQ(dram.stats(0).accesses, 0u);
}

/** Property sweep: completion times are self-consistent (completeAt =
 *  now + serviceCycles, monotone bus reservations never overlap). */
class DramStream : public ::testing::TestWithParam<int>
{
};

TEST_P(DramStream, ScheduleIsConsistent)
{
    const int ncores = GetParam();
    DramModel dram(ncores, params());
    Cycles now = 0;
    std::uint64_t last_complete = 0;
    for (int i = 0; i < 2000; ++i) {
        now += (i * 7) % 23;
        const CoreId core = i % ncores;
        const Addr addr = static_cast<Addr>((i * 2654435761u) % (1 << 26));
        const DramResult r = dram.access(core, addr, now);
        EXPECT_EQ(r.completeAt, now + r.serviceCycles);
        EXPECT_GE(r.completeAt, now + params().busCycles +
                                    params().rowHitCycles +
                                    params().dataCycles);
        EXPECT_LE(r.busWaitOther, r.busWait);
        last_complete = std::max<std::uint64_t>(last_complete,
                                                r.completeAt);
    }
    EXPECT_GT(last_complete, now);
}

INSTANTIATE_TEST_SUITE_P(Cores, DramStream, ::testing::Values(1, 2, 8, 16));

} // namespace
} // namespace sst
