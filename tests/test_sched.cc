/**
 * @file
 * Tests of the scheduler subsystem (src/sched/) and the unified event
 * engine. The load-bearing property is bit-exact reproducibility: the
 * default affinity-fifo policy must reproduce the golden speedup
 * numbers the pre-refactor hard-wired scheduler produced (anchored here
 * as exact Ts/Tp cycle counts), alternative policies must conserve the
 * workload (same committed instructions) and terminate, and the
 * preemption-wait bugfix must account every descheduled cycle.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hh"
#include "sched/policy.hh"
#include "sim/event_queue.hh"
#include "sim/system.hh"
#include "test_util.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

// ---- golden anchors --------------------------------------------------------

/**
 * Exact Ts/Tp of the paper-default machine, captured from the
 * pre-refactor scheduler (verified bit-identical across the event
 * engine + sched/ extraction). Any change here is a behavioural change
 * of the default configuration and must be deliberate.
 */
struct Golden
{
    const char *label;
    int nthreads;
    Cycles ts;
    Cycles tp;
};

constexpr Golden kGolden[] = {
    {"cholesky", 1, 3432501, 3432501},
    {"cholesky", 4, 3432501, 1077672},
    {"cholesky", 16, 3432501, 640758},
    {"fft", 1, 1963196, 1963196},
    {"fft", 4, 1963196, 527328},
    {"fft", 16, 1963196, 207740},
    {"lu.cont", 1, 3227759, 3227759},
    {"lu.cont", 4, 3227759, 893794},
    {"lu.cont", 16, 3227759, 558743},
};

TEST(SchedGolden, DefaultPolicyReproducesGoldenStacks)
{
    for (const Golden &g : kGolden) {
        const BenchmarkProfile profile = profileByLabel(g.label);
        const SpeedupExperiment e =
            runSpeedupExperiment(SimParams{}, profile, g.nthreads);
        EXPECT_EQ(e.ts, g.ts) << g.label << " x" << g.nthreads;
        EXPECT_EQ(e.tp, g.tp) << g.label << " x" << g.nthreads;
        EXPECT_TRUE(e.stack.sumsToHeight(1e-9))
            << g.label << " x" << g.nthreads;
    }
}

TEST(SchedGolden, ExplicitAffinityFifoMatchesDefault)
{
    SimParams params;
    params.schedPolicy = SchedPolicy::kAffinityFifo;
    const SpeedupExperiment e =
        runSpeedupExperiment(params, profileByLabel("cholesky"), 4);
    EXPECT_EQ(e.ts, 3432501u);
    EXPECT_EQ(e.tp, 1077672u);
}

TEST(SchedGolden, OversubscribedGolden)
{
    // 16 threads on 4 cores (Figure 7 regime): preemption, wake
    // placement and migration all active.
    const RunResult r =
        simulate(SimParams{}, profileByLabel("cholesky"), 16, 4);
    EXPECT_EQ(r.executionTime, 1547168u);
    EXPECT_EQ(r.totalInstructions, 8267294u);
}

// ---- preemption-wait accounting (the satellite bugfix) ---------------------

TEST(SchedAccounting, PreemptionWaitIsCharged)
{
    const RunResult r =
        simulate(SimParams{}, profileByLabel("cholesky"), 16, 4);
    Cycles preempt = 0;
    for (const ThreadCounters &t : r.threads) {
        // The OS-visible yield counter must cover every descheduled
        // wait, including time-slice preemptions — each thread's
        // hardware counter equals the exact ground-truth sum.
        EXPECT_EQ(t.yieldCycles, t.gtYield());
        preempt += t.gtPreemptYield;
    }
    EXPECT_GT(preempt, 0u);
}

TEST(SchedAccounting, NoPreemptionWhenNotOversubscribed)
{
    const RunResult r =
        simulate(SimParams{}, profileByLabel("cholesky"), 4, 4);
    for (const ThreadCounters &t : r.threads)
        EXPECT_EQ(t.gtPreemptYield, 0u);
}

// ---- alternative policies --------------------------------------------------

class SchedPolicies : public ::testing::TestWithParam<SchedPolicy>
{
};

TEST_P(SchedPolicies, OversubscribedRunConservesInstructions)
{
    // Without locks the op streams are schedule-independent (barrier
    // arrivals are charged exactly once), so every policy must commit
    // exactly the same program instructions; completing at all shows
    // the policy neither deadlocks nor starves a thread.
    const BenchmarkProfile profile = test::barrierHeavyProfile();
    const RunResult ref = simulate(SimParams{}, profile, 16, 4);

    SimParams params;
    params.schedPolicy = GetParam();
    const RunResult r = simulate(params, profile, 16, 4);
    EXPECT_EQ(r.totalInstructions, ref.totalInstructions);
    EXPECT_GT(r.executionTime, 0u);
    for (const ThreadCounters &t : r.threads)
        EXPECT_GT(t.finishTime, 0u);
}

TEST_P(SchedPolicies, LockRetriesPerturbInstructionsOnlyMarginally)
{
    // With locks, a failed acquire re-charges the lock op on retry, so
    // committed instructions are schedule-dependent — but only through
    // that sync overhead. Policies must stay within 1% of each other on
    // a full lock-bearing benchmark.
    const RunResult ref =
        simulate(SimParams{}, profileByLabel("cholesky"), 16, 4);
    SimParams params;
    params.schedPolicy = GetParam();
    const RunResult r =
        simulate(params, profileByLabel("cholesky"), 16, 4);
    const double rel =
        static_cast<double>(r.totalInstructions) /
        static_cast<double>(ref.totalInstructions);
    EXPECT_GT(rel, 0.99);
    EXPECT_LT(rel, 1.01);
}

TEST_P(SchedPolicies, BalancedRunConservesInstructions)
{
    const BenchmarkProfile profile = test::barrierHeavyProfile();
    const RunResult ref = simulate(SimParams{}, profile, 4, 4);
    SimParams params;
    params.schedPolicy = GetParam();
    const RunResult r = simulate(params, profile, 4, 4);
    EXPECT_EQ(r.totalInstructions, ref.totalInstructions);
}

TEST_P(SchedPolicies, DeterministicAcrossRuns)
{
    SimParams params;
    params.schedPolicy = GetParam();
    const RunResult a =
        simulate(params, profileByLabel("lu.cont"), 16, 4);
    const RunResult b =
        simulate(params, profileByLabel("lu.cont"), 16, 4);
    EXPECT_EQ(a.executionTime, b.executionTime);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.totalSpinInstructions, b.totalSpinInstructions);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedPolicies,
                         ::testing::Values(SchedPolicy::kAffinityFifo,
                                           SchedPolicy::kRoundRobin,
                                           SchedPolicy::kRandom),
                         [](const auto &info) {
                             std::string n =
                                 schedPolicyLabel(info.param);
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(SchedPolicies, RandomSeedSelectsDistinctSchedules)
{
    SimParams a;
    a.schedPolicy = SchedPolicy::kRandom;
    SimParams b = a;
    b.schedSeed = 1;
    const BenchmarkProfile profile = test::barrierHeavyProfile();
    const RunResult ra = simulate(a, profile, 16, 4);
    const RunResult rb = simulate(b, profile, 16, 4);
    // Same workload either way...
    EXPECT_EQ(ra.totalInstructions, rb.totalInstructions);
    // ...but an independent schedule (equal times would be an
    // astronomical coincidence for a 16/4 oversubscribed run).
    EXPECT_NE(ra.executionTime, rb.executionTime);
}

// ---- policy parsing --------------------------------------------------------

TEST(SchedPolicy, LabelsRoundTrip)
{
    for (const std::string &label : allSchedPolicyLabels())
        EXPECT_EQ(schedPolicyLabel(parseSchedPolicy(label)), label);
}

TEST(SchedPolicy, UnknownLabelListsAllPolicies)
{
    try {
        parseSchedPolicy("fifo");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        for (const std::string &label : allSchedPolicyLabels())
            EXPECT_NE(what.find(label), std::string::npos) << what;
    }
}

TEST(SchedPolicy, RawDecodingRejectsOutOfRange)
{
    EXPECT_NO_THROW(schedPolicyFromRaw(0));
    EXPECT_THROW(schedPolicyFromRaw(99), std::invalid_argument);
}

// ---- trace header carries the policy ---------------------------------------

TEST(SchedTrace, PolicyMismatchRejected)
{
    trace::TraceMeta meta;
    meta.nthreads = 1;
    meta.profileHash = 0x1234;
    meta.schedPolicy = SchedPolicy::kRoundRobin;
    meta.schedSeed = 9;
    meta.label = "t";
    TraceWriter writer(std::move(meta));
    Op end;
    end.type = OpType::kEnd;
    writer.append(0, end);
    writer.append(1, end);

    const TraceReader reader = TraceReader::fromBytes(writer.serialize());
    EXPECT_EQ(reader.meta().schedPolicy, SchedPolicy::kRoundRobin);
    EXPECT_EQ(reader.meta().schedSeed, 9u);
    EXPECT_NO_THROW(reader.requireCompatible(0x1234, 1,
                                             SchedPolicy::kRoundRobin,
                                             9));
    EXPECT_THROW(reader.requireCompatible(0x1234, 1,
                                          SchedPolicy::kAffinityFifo, 9),
                 TraceError);
    // Deterministic policies ignore the RNG stream: any seed matches.
    EXPECT_NO_THROW(reader.requireCompatible(0x1234, 1,
                                             SchedPolicy::kRoundRobin,
                                             0));
}

TEST(SchedTrace, RandomSeedMismatchRejected)
{
    trace::TraceMeta meta;
    meta.nthreads = 1;
    meta.profileHash = 0x1234;
    meta.schedPolicy = SchedPolicy::kRandom;
    meta.schedSeed = 9;
    meta.label = "t";
    TraceWriter writer(std::move(meta));
    Op end;
    end.type = OpType::kEnd;
    writer.append(0, end);
    writer.append(1, end);

    const TraceReader reader = TraceReader::fromBytes(writer.serialize());
    EXPECT_NO_THROW(reader.requireCompatible(0x1234, 1,
                                             SchedPolicy::kRandom, 9));
    EXPECT_THROW(reader.requireCompatible(0x1234, 1,
                                          SchedPolicy::kRandom, 0),
                 TraceError);
}

// ---- event queue ordering --------------------------------------------------

TEST(EventQueue, WakesFireBeforeCoreEventsAtTheSameCycle)
{
    EventQueue q(4);
    q.updateCore(2, 100);
    q.pushWake(100, 7);
    EventQueue::Event ev = q.peek();
    EXPECT_EQ(ev.kind, EventQueue::Kind::kWake);
    EXPECT_EQ(ev.at, 100u);
    EXPECT_EQ(ev.id, 7);
    q.popWake();
    ev = q.peek();
    EXPECT_EQ(ev.kind, EventQueue::Kind::kCore);
    EXPECT_EQ(ev.id, 2);
}

TEST(EventQueue, SimultaneousEventsBreakTiesByAscendingId)
{
    EventQueue q(4);
    q.pushWake(50, 3);
    q.pushWake(50, 1);
    q.pushWake(50, 2);
    for (const int expected : {1, 2, 3}) {
        const EventQueue::Event ev = q.peek();
        EXPECT_EQ(ev.id, expected);
        q.popWake();
    }

    q.updateCore(3, 60);
    q.updateCore(1, 60);
    EXPECT_EQ(q.peek().id, 1); // lowest core id among equal cycles
}

TEST(EventQueue, CoreRekeyingMovesBothDirections)
{
    EventQueue q(3);
    q.updateCore(0, 10);
    q.updateCore(1, 20);
    q.updateCore(2, 30);
    EXPECT_EQ(q.peek().id, 0);

    q.updateCore(0, 100); // later: core 1 surfaces
    EXPECT_EQ(q.peek().id, 1);

    q.updateCore(2, 5); // earlier: core 2 overtakes
    EXPECT_EQ(q.peek().id, 2);

    q.updateCore(2, kNeverCycles); // idle again
    EXPECT_EQ(q.peek().id, 1);
}

TEST(EventQueue, IdleCoresSitAtNever)
{
    EventQueue q(2);
    EXPECT_EQ(q.peek().at, kNeverCycles);
    EXPECT_EQ(q.pendingWakes(), 0u);
    q.pushWake(1, 0);
    EXPECT_EQ(q.pendingWakes(), 1u);
    EXPECT_EQ(q.peek().at, 1u);
}

} // namespace
} // namespace sst
