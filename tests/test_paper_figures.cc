/**
 * @file
 * Figure-level regression tests: the qualitative claims of the paper's
 * evaluation, asserted on a representative subset so the full table
 * benches cannot silently drift.
 */

#include <gtest/gtest.h>

#include "core/classify.hh"
#include "core/experiment.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

SpeedupExperiment
run16(const std::string &label)
{
    const BenchmarkProfile &p = profileByLabel(label);
    SimParams params;
    params.ncores = 16;
    return runSpeedupExperiment(params, p, 16);
}

TEST(PaperFigures, ScalingClassesMatchFigure6)
{
    for (const char *label :
         {"blackscholes_medium", "radix", "heartwall"}) {
        EXPECT_EQ(classifySpeedup(run16(label).actualSpeedup),
                  ScalingClass::kGood)
            << label;
    }
    for (const char *label : {"cholesky", "facesim_small", "fft"}) {
        EXPECT_EQ(classifySpeedup(run16(label).actualSpeedup),
                  ScalingClass::kModerate)
            << label;
    }
    for (const char *label : {"ferret_small", "bodytrack_small"}) {
        EXPECT_EQ(classifySpeedup(run16(label).actualSpeedup),
                  ScalingClass::kPoor)
            << label;
    }
}

TEST(PaperFigures, CholeskyIsSpinDominated)
{
    const SpeedupExperiment exp = run16("cholesky");
    const auto ranked = rankedDelimiters(exp.stack);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0], StackComponent::kSpin);
    // Figure 8: cholesky has the suite's largest positive interference,
    // exceeded by its negative interference (net positive).
    EXPECT_GT(exp.stack.posLlc, 0.2);
    EXPECT_GT(exp.stack.negLlc, exp.stack.posLlc);
}

TEST(PaperFigures, FacesimIsYieldThenCache)
{
    const SpeedupExperiment exp = run16("facesim_medium");
    const auto ranked = rankedDelimiters(exp.stack);
    ASSERT_GE(ranked.size(), 2u);
    EXPECT_EQ(ranked[0], StackComponent::kYield);
    EXPECT_EQ(ranked[1], StackComponent::kNegLlcNet);
}

TEST(PaperFigures, BlackscholesHasNoDelimiters)
{
    const SpeedupExperiment exp = run16("blackscholes_medium");
    EXPECT_TRUE(rankedDelimiters(exp.stack).empty());
    EXPECT_GT(exp.actualSpeedup, 15.0);
}

TEST(PaperFigures, LargerLlcRemovesNegativeInterferenceOnly)
{
    // Figure 9's mechanism on cholesky: 2MB -> 8MB kills negative
    // interference while positive interference survives.
    const BenchmarkProfile &p = profileByLabel("cholesky");
    SimParams small;
    small.ncores = 16;
    SimParams big = small;
    big.cache.llcBytes = 8 * 1024 * 1024;
    const SpeedupExperiment s = runSpeedupExperiment(small, p, 16);
    const SpeedupExperiment b = runSpeedupExperiment(big, p, 16);
    EXPECT_LT(b.stack.negLlc, 0.25 * s.stack.negLlc + 0.05);
    EXPECT_GT(b.stack.posLlc, 0.25 * s.stack.posLlc);
    EXPECT_LT(b.stack.netNegLlc(), s.stack.netNegLlc());
}

TEST(PaperFigures, OversubscriptionHelpsFerret)
{
    // Figure 7's claim on 4 cores.
    const BenchmarkProfile &p = profileByLabel("ferret_small");
    SimParams params;
    params.ncores = 4;
    const RunResult baseline = runSingleThreaded(params, p);
    const RunResult equal = simulate(params, p, 4, 4);
    const RunResult over = simulate(params, p, 16, 4);
    EXPECT_LT(over.executionTime, equal.executionTime);
    EXPECT_GT(baseline.executionTime, over.executionTime);
}

} // namespace
} // namespace sst
