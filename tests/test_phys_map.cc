/**
 * @file
 * Property tests for the virtual-to-physical page-hash translation:
 * offsets preserved, determinism, page-granular mapping, and — the
 * reason it exists — uniform spreading over cache sets and DRAM banks.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/phys_map.hh"
#include "workload/op.hh"

namespace sst {
namespace {

TEST(PhysMap, PreservesInPageOffset)
{
    for (Addr v : {Addr(0x1234), Addr(0x1'0000'0FFF),
                   Addr(0x8000'0000) + 77}) {
        EXPECT_EQ(toPhysical(v) % kPageBytes, v % kPageBytes);
    }
}

TEST(PhysMap, DeterministicAndPageGranular)
{
    const Addr page = 0x1'2345'6000;
    const Addr frame = toPhysical(page) / kPageBytes;
    for (Addr off = 0; off < kPageBytes; off += 64)
        EXPECT_EQ(toPhysical(page + off) / kPageBytes, frame);
    EXPECT_EQ(toPhysical(page), toPhysical(page));
}

TEST(PhysMap, StaysWithinPhysicalSpace)
{
    for (Addr v = 0; v < (Addr(1) << 40); v += (Addr(1) << 33) + 4097)
        EXPECT_LT(toPhysical(v), Addr(1) << kPhysBits);
}

TEST(PhysMap, SpreadsRegionsAcrossLlcSets)
{
    // The raw virtual region bases all alias into the low LLC sets (the
    // pathology this mapping removes); sampling lines across the
    // regions, the physical set distribution must cover the index space
    // roughly uniformly.
    constexpr int kSets = 2048;
    std::map<std::uint64_t, int> set_counts;
    int samples = 0;
    for (ThreadId t = 0; t < 16; ++t) {
        for (int i = 0; i < 512; ++i) {
            const Addr phys = toPhysical(addrmap::privateBase(t) +
                                         Addr(i) * kLineBytes);
            set_counts[lineNum(phys) % kSets]++;
            ++samples;
        }
    }
    // 8192 samples over 2048 sets: expect broad coverage, no pile-ups.
    EXPECT_GE(set_counts.size(), 1500u);
    for (const auto &[set, count] : set_counts)
        EXPECT_LE(count, 16) << "set " << set;
    EXPECT_EQ(samples, 8192);
}

TEST(PhysMap, LinesWithinPagesCoverAllBanks)
{
    // Banks interleave by line; within each 4KB page all 8 banks are
    // touched, and the page hash cannot break that (offsets preserved).
    std::map<int, int> bank_counts;
    const Addr base = addrmap::kSharedBase;
    for (int p = 0; p < 8; ++p) {
        for (Addr l = 0; l < kPageBytes / kLineBytes; ++l) {
            const Addr phys = toPhysical(base + Addr(p) * kPageBytes +
                                         l * kLineBytes);
            bank_counts[static_cast<int>(lineNum(phys) % 8)]++;
        }
    }
    ASSERT_EQ(bank_counts.size(), 8u);
    for (const auto &[bank, count] : bank_counts)
        EXPECT_EQ(count, 8 * 64 / 8) << "bank " << bank;
}

TEST(PhysMap, DistinctRegionsRarelyCollide)
{
    // Sample lines from all workload regions; physical line numbers
    // should be unique (no aliasing between regions).
    std::map<Addr, int> lines;
    for (ThreadId t = 0; t < 16; ++t) {
        for (int i = 0; i < 64; ++i) {
            lines[lineNum(toPhysical(addrmap::privateBase(t) +
                                     Addr(i) * kLineBytes))]++;
        }
    }
    for (int i = 0; i < 64; ++i) {
        lines[lineNum(
            toPhysical(addrmap::kSharedBase + Addr(i) * kLineBytes))]++;
    }
    for (const auto &[line, count] : lines)
        EXPECT_EQ(count, 1) << "physical line collision at " << line;
}

} // namespace
} // namespace sst
