/**
 * @file
 * Shared helpers for the test suite: small controlled benchmark profiles
 * that exercise one mechanism at a time.
 */

#ifndef SST_TESTS_TEST_UTIL_HH
#define SST_TESTS_TEST_UTIL_HH

#include "workload/profile.hh"

namespace sst {
namespace test {

/** A tiny compute-only profile (no sync, no sharing). */
inline BenchmarkProfile
computeOnlyProfile()
{
    BenchmarkProfile p;
    p.name = "t-compute";
    p.suite = "test";
    p.totalIters = 2000;
    p.computePerIter = 100;
    p.memPerIter = 4;
    p.privateBytes = 8 * 1024;
    p.barrierPhases = 1;
    p.seed = 7;
    return p;
}

/** One hot lock, every iteration enters a short critical section. */
inline BenchmarkProfile
lockHeavyProfile()
{
    BenchmarkProfile p = computeOnlyProfile();
    p.name = "t-lock";
    p.totalIters = 3000;
    p.numLocks = 1;
    p.lockFreq = 1.0;
    p.csCompute = 60;
    p.csMem = 1;
    return p;
}

/** Many short barrier phases with skewed work. */
inline BenchmarkProfile
barrierHeavyProfile()
{
    BenchmarkProfile p = computeOnlyProfile();
    p.name = "t-barrier";
    p.totalIters = 4000;
    p.barrierPhases = 16;
    p.imbalanceSkew = 0.3;
    return p;
}

/** Shared-heavy profile with a moving hot window (positive interf.). */
inline BenchmarkProfile
sharingProfile()
{
    BenchmarkProfile p = computeOnlyProfile();
    p.name = "t-sharing";
    p.totalIters = 4000;
    p.memPerIter = 12;
    p.sharedBytes = 512 * 1024;
    p.sharedFrac = 0.5;
    p.sharedHotFrac = 0.5;
    p.sharedHotBytes = 32 * 1024;
    p.sharedWindowPhases = 2;
    p.barrierPhases = 8;
    return p;
}

/** Footprint far beyond the LLC: steady DRAM traffic. */
inline BenchmarkProfile
memoryHeavyProfile()
{
    BenchmarkProfile p = computeOnlyProfile();
    p.name = "t-memory";
    p.totalIters = 2000;
    p.memPerIter = 16;
    p.privateBytes = 4 * 1024 * 1024;
    p.privateHotBytes = 16 * 1024;
    p.privateHotFrac = 0.9;
    return p;
}

} // namespace test
} // namespace sst

#endif // SST_TESTS_TEST_UTIL_HH
