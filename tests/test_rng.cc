/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace sst {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(21);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

/** Property sweep: below(b) covers the whole range for various bounds. */
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundSweep, CoversRange)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 77 + 1);
    std::vector<bool> seen(bound, false);
    for (std::uint64_t i = 0; i < bound * 64; ++i)
        seen[rng.below(bound)] = true;
    for (std::uint64_t v = 0; v < bound; ++v)
        EXPECT_TRUE(seen[v]) << "value " << v << " never drawn";
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 100));

} // namespace
} // namespace sst
