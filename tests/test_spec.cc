/**
 * @file
 * Tests of the declarative ExperimentSpec API: canonical-form round
 * trips and stability, the machine-key table, the three named
 * registries (enumeration order, aliasing, generated error messages),
 * spec -> grid expansion, the cores oversubscription axis, and
 * fingerprint-v3 result-cache sharing between spec-driven and
 * flag-driven invocations.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "driver/fingerprint.hh"
#include "driver/sweep.hh"
#include "spec/machine_keys.hh"
#include "spec/registries.hh"
#include "spec/spec.hh"
#include "tests/test_util.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

std::string
freshTempDir(const char *name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "sst_spec_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** A spec with every axis and a few machine overrides populated. */
ExperimentSpec
fullyPopulatedSpec()
{
    ExperimentSpec spec;
    spec.profiles = {"cholesky", "facesim_medium"};
    spec.threads = {2, 4, 8, 16};
    spec.cores = {2, 16};
    spec.llcBytes = {1u << 20, 2u << 20};
    spec.seedOffset = 7;
    spec.machine.schedPolicy = SchedPolicy::kRandom;
    spec.machine.schedSeed = 99;
    spec.machine.cache.llcBytes = 4u << 20;
    spec.machine.timeSliceCycles = 8000;
    spec.machine.migrationFlushesL1 = true;
    spec.machine.accounting.stackDetector =
        AccountingParams::Detector::kLi;
    spec.csvPath = "out.csv";
    spec.quiet = true;
    return spec;
}

// ---- round trip and canonical form -----------------------------------------

TEST(Spec, DefaultSpecRoundTrips)
{
    const ExperimentSpec s;
    EXPECT_EQ(parseSpec(serializeSpec(s)), s);
}

TEST(Spec, FullyPopulatedSpecRoundTrips)
{
    const ExperimentSpec s = fullyPopulatedSpec();
    const ExperimentSpec back = parseSpec(serializeSpec(s));
    EXPECT_EQ(back, s);
    // Spot-check fields actually survived (not just text equality).
    EXPECT_EQ(back.cores, (std::vector<int>{2, 16}));
    EXPECT_EQ(back.machine.schedPolicy, SchedPolicy::kRandom);
    EXPECT_EQ(back.machine.schedSeed, 99u);
    EXPECT_EQ(back.machine.cache.llcBytes, 4u << 20);
    EXPECT_EQ(back.machine.timeSliceCycles, 8000u);
    EXPECT_TRUE(back.machine.migrationFlushesL1);
    EXPECT_EQ(back.machine.accounting.stackDetector,
              AccountingParams::Detector::kLi);
    EXPECT_EQ(back.csvPath, "out.csv");
    EXPECT_TRUE(back.quiet);
}

TEST(Spec, SerializationIsAFixedPoint)
{
    const std::string text = serializeSpec(fullyPopulatedSpec());
    EXPECT_EQ(serializeSpec(parseSpec(text)), text);
}

TEST(Spec, KeyOrderAndFormattingDoNotMatter)
{
    const ExperimentSpec a = parseSpec("profiles = cholesky\n"
                                       "threads = 2, 4\n"
                                       "machine.llc-bytes = 4M\n");
    const ExperimentSpec b =
        parseSpec("  machine.llc-bytes=4194304   # normalized\n"
                  "\n"
                  "threads=2,4\n"
                  "profiles =   cholesky\n");
    EXPECT_EQ(a, b);
}

TEST(Spec, CommentsAndBlankLinesIgnored)
{
    const ExperimentSpec s = parseSpec("# a comment\n"
                                       "\n"
                                       "threads = 8   # trailing\n");
    EXPECT_EQ(s.threads, (std::vector<int>{8}));
}

TEST(Spec, NegativeIntegersAreRejectedNotWrapped)
{
    // strtoull would silently wrap "-1" to 2^64-1; the spec parsers
    // must reject the sign instead.
    ExperimentSpec s;
    EXPECT_THROW(applySpecValue(s, "machine.dispatch-width", "-1"),
                 std::invalid_argument);
    EXPECT_THROW(applySpecValue(s, "seed-offset", "-2"),
                 std::invalid_argument);
    EXPECT_THROW(applySpecValue(s, "sched-seed", "-3"),
                 std::invalid_argument);
    EXPECT_THROW(applySpecValue(s, "llc", "-5M"),
                 std::invalid_argument);
}

TEST(Spec, HashInsideValuesSurvivesOnlyCommentsAreStripped)
{
    const ExperimentSpec s =
        parseSpec("output.csv = run#1.csv   # the real comment\n");
    EXPECT_EQ(s.csvPath, "run#1.csv");
    EXPECT_EQ(parseSpec(serializeSpec(s)), s);

    // A value parse would read back as a comment cannot serialize —
    // failing loudly keeps parse(serialize(s)) == s exact.
    ExperimentSpec bad;
    bad.csvPath = "run #1.csv";
    EXPECT_THROW(serializeSpec(bad), std::invalid_argument);
}

TEST(Spec, TraceFrontendRejectsCoresAxis)
{
    // Recordings embed a #cores == #threads schedule; oversubscribed
    // jobs would silently regenerate live, so the spec is rejected.
    ExperimentSpec s;
    s.frontend = "trace";
    s.traceDir = "/tmp/traces";
    s.cores = {2, 4};
    EXPECT_THROW(validateSpec(s), std::invalid_argument);
    s.cores.clear();
    EXPECT_NO_THROW(validateSpec(s));
}

TEST(Spec, ProfilesAllMeansWholeSuite)
{
    const ExperimentSpec s = parseSpec("profiles = all\n");
    EXPECT_TRUE(s.profiles.empty());
    EXPECT_EQ(specGrid(s).profiles, allProfileLabels());
}

TEST(Spec, ParseErrorsCarryLineNumbers)
{
    try {
        parseSpec("threads = 4\nnot-a-key = 1\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Spec, UnknownKeysListValidKeys)
{
    try {
        ExperimentSpec s;
        applySpecValue(s, "not-a-key", "1");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("profiles"), std::string::npos) << what;
        EXPECT_NE(what.find("sched"), std::string::npos) << what;
        EXPECT_NE(what.find("machine.llc-bytes"), std::string::npos)
            << what;
    }
}

TEST(Spec, UnknownMachineKeysListMachineKeys)
{
    try {
        ExperimentSpec s;
        applySpecValue(s, "machine.not-a-knob", "1");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("machine.dispatch-width"),
                  std::string::npos)
            << e.what();
    }
}

// ---- machine-key table ------------------------------------------------------

TEST(MachineKeys, SizeTextRoundTripsThroughParseSize)
{
    for (const std::uint64_t v :
         {std::uint64_t(1), std::uint64_t(1536), std::uint64_t(64) << 10,
          std::uint64_t(2) << 20, std::uint64_t(3) << 30}) {
        EXPECT_EQ(parseSize(sizeText(v)), v) << sizeText(v);
    }
}

TEST(MachineKeys, EveryKeyRoundTripsItsValue)
{
    SimParams params;
    std::string blob;
    encodeMachineParams(blob, params);
    SimParams decoded;
    // Perturb a couple of fields so decoding proves it restores them.
    decoded.dispatchWidth = 1;
    decoded.cache.llcBytes = 1;
    for (const MachineKey &k : machineKeys())
        setMachineValue(decoded, k, machineValueText(k, params));
    std::string blob2;
    encodeMachineParams(blob2, decoded);
    EXPECT_EQ(blob, blob2);
}

TEST(MachineKeys, BadValuesAreRejected)
{
    SimParams params;
    EXPECT_THROW(
        setMachineValue(params, *findMachineKey("dispatch-width"), "x"),
        std::invalid_argument);
    EXPECT_THROW(
        setMachineValue(params, *findMachineKey("oracle-atds"), "maybe"),
        std::invalid_argument);
    EXPECT_THROW(
        setMachineValue(params, *findMachineKey("stack-detector"), "w"),
        std::invalid_argument);
}

// ---- registries -------------------------------------------------------------

TEST(Registries, ProfileRegistryMatchesSuiteOrder)
{
    const auto &names = profileRegistry().names();
    const auto &suite = benchmarkSuite();
    ASSERT_EQ(names.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(names[i], suite[i].label());
    // allProfileLabels() is now a thin wrapper over the registry.
    EXPECT_EQ(allProfileLabels(), names);
}

TEST(Registries, BareNamesAliasTheFirstInputVariant)
{
    // "facesim" is not a primary label (it has input variants), but
    // resolves to the first of them — the historical rule.
    const BenchmarkProfile *p = findProfileByLabel("facesim");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name, "facesim");
    EXPECT_EQ(p->label(), profileByLabel("facesim").label());
}

TEST(Registries, SchedulerRegistryOrderMatchesEnum)
{
    const auto &names = schedulerRegistry().names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "affinity-fifo");
    EXPECT_EQ(names[1], "round-robin");
    EXPECT_EQ(names[2], "random");
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(schedulerRegistry().at(names[i]),
                  static_cast<SchedPolicy>(i));
    EXPECT_EQ(allSchedPolicyLabels(), names);
}

TEST(Registries, OpSourceRegistryListsFrontends)
{
    const auto &names = opSourceRegistry().names();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "program");
    EXPECT_EQ(names[1], "trace");
    EXPECT_EQ(names[2], "pipeline");
    EXPECT_EQ(names[3], "workload-file");
    EXPECT_TRUE(opSourceRegistry().at("trace").needsTraceDir);
    EXPECT_FALSE(opSourceRegistry().at("program").needsTraceDir);
    EXPECT_FALSE(opSourceRegistry().at("pipeline").needsTraceDir);
    EXPECT_FALSE(opSourceRegistry().at("workload-file").needsTraceDir);
}

TEST(Registries, UnknownLabelsListValidNamesEverywhere)
{
    // Profiles (through the spec layer).
    try {
        ExperimentSpec s;
        s.profiles = {"not-a-benchmark"};
        validateSpec(s);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("cholesky"),
                  std::string::npos)
            << e.what();
    }
    // Scheduler policies.
    try {
        ExperimentSpec s;
        applySpecValue(s, "sched", "not-a-policy");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("affinity-fifo"),
                  std::string::npos)
            << e.what();
    }
    // Frontends.
    try {
        ExperimentSpec s;
        applySpecValue(s, "frontend", "not-a-frontend");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("program"), std::string::npos) << what;
        EXPECT_NE(what.find("trace"), std::string::npos) << what;
    }
}

// ---- validation -------------------------------------------------------------

TEST(Spec, TraceFrontendRequiresTraceDir)
{
    ExperimentSpec s;
    s.frontend = "trace";
    EXPECT_THROW(validateSpec(s), std::invalid_argument);
    s.traceDir = "/tmp/traces";
    EXPECT_NO_THROW(validateSpec(s));
}

TEST(Spec, TraceDirWithoutTraceFrontendRejected)
{
    ExperimentSpec s;
    s.traceDir = "/tmp/traces"; // frontend is still "program"
    EXPECT_THROW(validateSpec(s), std::invalid_argument);
}

TEST(Spec, SchedSeedWithoutRandomPolicyRejected)
{
    ExperimentSpec s;
    s.machine.schedSeed = 5;
    EXPECT_THROW(validateSpec(s), std::invalid_argument);
    s.machine.schedPolicy = SchedPolicy::kRandom;
    EXPECT_NO_THROW(validateSpec(s));
}

TEST(Spec, DriverOptionsGetTraceDirOnlyFromTraceFrontend)
{
    ExperimentSpec s;
    s.frontend = "trace";
    s.traceDir = "/tmp/traces";
    DriverOptions opts;
    applySpecToDriverOptions(s, opts);
    EXPECT_EQ(opts.traceDir, "/tmp/traces");

    ExperimentSpec p;
    DriverOptions opts2;
    applySpecToDriverOptions(p, opts2);
    EXPECT_TRUE(opts2.traceDir.empty());
}

// ---- cores axis -------------------------------------------------------------

TEST(Spec, CoresAxisExpandsInnermost)
{
    ExperimentSpec s = parseSpec("profiles = cholesky\n"
                                 "threads = 16\n"
                                 "cores = 2, 4\n");
    const std::vector<JobSpec> jobs = expandGrid(specGrid(s));
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].nthreads(), 16);
    EXPECT_EQ(jobs[0].ncores, 2);
    EXPECT_EQ(jobs[1].ncores, 4);
    EXPECT_EQ(jobs[0].ncoresEffective(), 2);
}

TEST(Fingerprint, SensitiveToCoresAxis)
{
    JobSpec a = JobSpec::forProfile(test::computeOnlyProfile(), 4);
    JobSpec b = a;
    b.ncores = 2;
    EXPECT_NE(fingerprintJob(a).hash, fingerprintJob(b).hash);
    // ncores == nthreads is the same simulation as ncores == 0.
    JobSpec c = a;
    c.ncores = 4;
    EXPECT_EQ(fingerprintJob(a).canonical, fingerprintJob(c).canonical);
    // The baseline always runs on one core either way.
    EXPECT_EQ(fingerprintBaseline(a).canonical,
              fingerprintBaseline(b).canonical);
}

TEST(Driver, OversubscribedJobMatchesDirectRun)
{
    JobSpec spec = JobSpec::forProfile(test::barrierHeavyProfile(), 4);
    spec.ncores = 2;
    const std::vector<JobResult> results =
        runExperimentBatch({spec}, DriverOptions{});
    ASSERT_TRUE(results[0].ok()) << results[0].error;

    const SpeedupExperiment direct = runSpeedupExperiment(
        spec.params, spec.workload.groups[0].profile, spec.nthreads(),
        nullptr, spec.ncores);
    EXPECT_EQ(results[0].exp.ts, direct.ts);
    EXPECT_EQ(results[0].exp.tp, direct.tp);
    EXPECT_EQ(results[0].exp.actualSpeedup, direct.actualSpeedup);
    // Time-sharing 4 threads on 2 cores must cost time vs 4 cores.
    const SpeedupExperiment full = runSpeedupExperiment(
        spec.params, spec.workload.groups[0].profile, 4);
    EXPECT_GT(direct.tp, full.tp);
}

TEST(Driver, MoreCoresThanThreadsRejected)
{
    JobSpec spec = JobSpec::forProfile(test::computeOnlyProfile(), 2);
    spec.ncores = 4;
    const std::vector<JobResult> results =
        runExperimentBatch({spec}, DriverOptions{});
    ASSERT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("ncores"), std::string::npos);
}

// ---- fingerprint v3: spec- and flag-driven runs share cache entries --------

TEST(Fingerprint, SpecAndFlagGridsProduceIdenticalFingerprints)
{
    // As `sst run --spec` builds it.
    const ExperimentSpec spec = parseSpec("profiles = cholesky\n"
                                          "threads = 2, 4\n"
                                          "sched = round-robin\n");
    const std::vector<JobSpec> specJobs = expandGrid(specGrid(spec));

    // As `sweep --profiles cholesky --threads 2,4 --sched round-robin`
    // builds it.
    SweepGrid flags;
    flags.profiles = {"cholesky"};
    flags.threads = {2, 4};
    flags.baseParams.schedPolicy = SchedPolicy::kRoundRobin;
    const std::vector<JobSpec> flagJobs = expandGrid(flags);

    ASSERT_EQ(specJobs.size(), flagJobs.size());
    for (std::size_t i = 0; i < specJobs.size(); ++i) {
        EXPECT_EQ(fingerprintJob(specJobs[i]).canonical,
                  fingerprintJob(flagJobs[i]).canonical);
    }
    // The canonical text embeds the shared machine encoding and v3.
    const std::string canon = fingerprintJob(specJobs[0]).canonical;
    EXPECT_NE(canon.find("fingerprint.version=3"), std::string::npos);
    EXPECT_NE(canon.find("machine.llc-bytes = 2M"), std::string::npos);
    EXPECT_NE(canon.find("sched=round-robin"), std::string::npos);
}

TEST(Driver, SpecDrivenRunReusesFlagDrivenCacheEntries)
{
    const std::string dir = freshTempDir("xcache");
    DriverOptions opts;
    opts.cacheDir = dir;
    opts.jobs = 2;

    // Flag-driven first run populates the cache.
    SweepGrid flags;
    flags.profiles = {"cholesky"};
    flags.threads = {2};
    BatchStats first;
    runExperimentBatch(expandGrid(flags), opts, &first);
    EXPECT_EQ(first.executed, 1u);

    // The equivalent spec-driven run must replay entirely from it.
    const ExperimentSpec spec =
        parseSpec("profiles = cholesky\nthreads = 2\n");
    BatchStats second;
    const std::vector<JobResult> replay =
        runExperimentBatch(expandGrid(specGrid(spec)), opts, &second);
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.cached, 1u);
    ASSERT_TRUE(replay[0].fromCache());
    std::filesystem::remove_all(dir);
}

// ---- spec files -------------------------------------------------------------

TEST(Spec, SpecFileParsesAndReportsPathOnError)
{
    const std::string dir = freshTempDir("files");
    std::filesystem::create_directories(dir);
    const std::string good = dir + "/good.spec";
    {
        std::ofstream out(good);
        out << "profiles = cholesky\nthreads = 2\n";
    }
    EXPECT_EQ(parseSpecFile(good).threads, (std::vector<int>{2}));

    const std::string bad = dir + "/bad.spec";
    {
        std::ofstream out(bad);
        out << "threads = nope\n";
    }
    try {
        parseSpecFile(bad);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("bad.spec"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(parseSpecFile(dir + "/missing.spec"),
                 std::invalid_argument);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace sst
