/**
 * @file
 * Unit tests for the accounting hardware unit and the software
 * post-processing (report) step.
 */

#include <gtest/gtest.h>

#include "accounting/accounting_unit.hh"
#include "accounting/report.hh"

namespace sst {
namespace {

TEST(AccountingUnit, InstructionCounters)
{
    AccountingUnit acct(2, AccountingParams{});
    acct.onInstructions(0, 100);
    acct.onSpinInstructions(0, 8);
    EXPECT_EQ(acct.counters(0).instructions, 108u);
    EXPECT_EQ(acct.counters(0).spinInstructions, 8u);
    EXPECT_EQ(acct.counters(1).instructions, 0u);
}

TEST(AccountingUnit, LlcAccessAndSampling)
{
    AccountingUnit acct(1, AccountingParams{});
    acct.onLlcAccess(0, true);
    acct.onLlcAccess(0, false);
    acct.onLlcAccess(0, true);
    EXPECT_EQ(acct.counters(0).llcAccesses, 3u);
    EXPECT_EQ(acct.counters(0).atdSampledAccesses, 2u);
}

TEST(AccountingUnit, InterThreadMissTakesWholeStall)
{
    AccountingUnit acct(1, AccountingParams{});
    acct.onLlcLoadMissComplete(0, 50, /*sampled=*/true,
                               /*inter_thread=*/true, 10, 10, 10);
    const ThreadCounters &c = acct.counters(0);
    EXPECT_EQ(c.negLlcSampledStall, 50u);
    EXPECT_EQ(c.interThreadMissesSampled, 1u);
    // No memory attribution for inter-thread misses (disjointness).
    EXPECT_EQ(c.busWaitOther + c.bankWaitOther + c.pageConflictOther, 0u);
}

TEST(AccountingUnit, IntraThreadMissAttributesClampedWaits)
{
    AccountingUnit acct(1, AccountingParams{});
    // Waits sum to 60 but only 25 cycles blocked the ROB head.
    acct.onLlcLoadMissComplete(0, 25, true, false, 20, 20, 20);
    const ThreadCounters &c = acct.counters(0);
    EXPECT_EQ(c.negLlcSampledStall, 0u);
    EXPECT_EQ(c.busWaitOther, 20u);
    EXPECT_EQ(c.bankWaitOther, 5u);  // clamped
    EXPECT_EQ(c.pageConflictOther, 0u);
}

TEST(AccountingUnit, UnsampledMissOnlyCountsPenaltyStats)
{
    AccountingUnit acct(1, AccountingParams{});
    acct.onLlcLoadMissComplete(0, 40, false, false, 10, 0, 0);
    const ThreadCounters &c = acct.counters(0);
    EXPECT_EQ(c.llcLoadMissStall, 40u);
    EXPECT_EQ(c.llcLoadMisses, 1u);
    EXPECT_EQ(c.busWaitOther, 0u);
}

TEST(AccountingUnit, SpinDetectorIntegration)
{
    AccountingUnit acct(1, AccountingParams{});
    Cycles now = 0;
    for (int i = 0; i < 10; ++i) {
        acct.onLoad(0, 0x100, 0xF000, 1, false, now);
        now += 20;
    }
    acct.onLoad(0, 0x100, 0xF000, 0, true, now);
    EXPECT_EQ(acct.counters(0).spinDetectedTian, 200u);
}

TEST(AccountingUnit, DescheduleFlushesDetectors)
{
    AccountingUnit acct(1, AccountingParams{});
    Cycles now = 0;
    for (int i = 0; i < 10; ++i) {
        acct.onLoad(0, 0x100, 0xF000, 1, false, now);
        now += 20;
    }
    acct.onDescheduled(0);
    // Post-wake change is not attributed to the pre-yield spin.
    acct.onLoad(0, 0x100, 0xF000, 0, true, now);
    EXPECT_EQ(acct.counters(0).spinDetectedTian, 0u);
}

TEST(AccountingUnit, ResetThreadZeroesCounters)
{
    AccountingUnit acct(1, AccountingParams{});
    acct.onInstructions(0, 100);
    acct.onYield(0, 500);
    acct.resetThread(0);
    EXPECT_EQ(acct.counters(0).instructions, 0u);
    EXPECT_EQ(acct.counters(0).yieldCycles, 0u);
}

TEST(Report, MeasuredSamplingFactorFallsBackToNominal)
{
    ThreadCounters c;
    EXPECT_DOUBLE_EQ(measuredSamplingFactor(c, 32.0), 32.0);
    c.llcAccesses = 300;
    c.atdSampledAccesses = 10;
    EXPECT_DOUBLE_EQ(measuredSamplingFactor(c, 32.0), 30.0);
    c.atdSampledAccesses = 15;
    EXPECT_DOUBLE_EQ(measuredSamplingFactor(c, 32.0), 20.0);
}

TEST(Report, AverageMissPenalty)
{
    ThreadCounters c;
    EXPECT_DOUBLE_EQ(averageMissPenalty(c), 0.0);
    c.llcLoadMissStall = 500;
    c.llcLoadMisses = 10;
    EXPECT_DOUBLE_EQ(averageMissPenalty(c), 50.0);
}

TEST(Report, ComponentExtrapolationAndInterpolation)
{
    ThreadCounters c;
    c.llcAccesses = 640;
    c.atdSampledAccesses = 20; // measured factor 32
    c.negLlcSampledStall = 100;
    c.interThreadHitsSampled = 5;
    c.llcLoadMissStall = 1000;
    c.llcLoadMisses = 20; // avg penalty 50
    c.busWaitOther = 10;
    c.spinDetectedTian = 77;
    c.yieldCycles = 42;
    c.finishTime = 900;

    ReportOptions opts;
    opts.nominalSamplingFactor = 32.0;
    const std::vector<CycleComponents> comps =
        computeComponents({c}, /*tp=*/1000, opts);
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_DOUBLE_EQ(comps[0].negLlc, 100.0 * 32.0);
    EXPECT_DOUBLE_EQ(comps[0].posLlc, 5.0 * 32.0 * 50.0);
    EXPECT_DOUBLE_EQ(comps[0].negMem, 10.0 * 32.0);
    EXPECT_DOUBLE_EQ(comps[0].spin, 77.0);
    EXPECT_DOUBLE_EQ(comps[0].yield, 42.0);
    EXPECT_DOUBLE_EQ(comps[0].imbalance, 100.0);
    EXPECT_DOUBLE_EQ(comps[0].coherency, 0.0);
}

TEST(Report, LiDetectorOption)
{
    ThreadCounters c;
    c.spinDetectedTian = 10;
    c.spinDetectedLi = 99;
    c.finishTime = 100;
    ReportOptions opts;
    opts.useLiDetector = true;
    const auto comps = computeComponents({c}, 100, opts);
    EXPECT_DOUBLE_EQ(comps[0].spin, 99.0);
}

TEST(Report, CoherencyOption)
{
    ThreadCounters c;
    c.coherencyMisses = 7;
    c.finishTime = 100;
    ReportOptions opts;
    opts.accountCoherency = true;
    opts.coherencyMissPenalty = 10.0;
    const auto comps = computeComponents({c}, 100, opts);
    EXPECT_DOUBLE_EQ(comps[0].coherency, 70.0);
}

} // namespace
} // namespace sst
