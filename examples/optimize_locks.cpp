/**
 * @file
 * Software-optimization example (the paper's Section 7.1 guidance):
 * "if spinning or yielding is large, use finer grained locks and
 * smaller critical sections". We define a custom lock-heavy workload
 * through the public profile API, read its speedup stack, apply the
 * stack's advice — split the single hot lock into 16 finer locks and
 * halve the critical section — and measure the speedup gained.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/render.hh"
#include "workload/profile.hh"

namespace {

sst::BenchmarkProfile
baseWorkload()
{
    sst::BenchmarkProfile p;
    p.name = "hashtable-app";
    p.suite = "example";
    p.totalIters = 16000;
    p.computePerIter = 200;
    p.memPerIter = 10;
    p.privateBytes = 32 * 1024;
    p.sharedBytes = 256 * 1024;
    p.sharedFrac = 0.05;
    p.sharedHotFrac = 0.3;
    p.numLocks = 1;      // one global lock...
    p.lockFreq = 0.8;    // ...taken on most iterations
    p.csCompute = 96;    // ...with a fat critical section
    p.csMem = 2;
    p.barrierPhases = 8;
    p.imbalanceSkew = 0.05;
    p.seed = 1234;
    return p;
}

void
report(const char *title, const sst::SpeedupExperiment &exp)
{
    std::printf("== %s ==\n", title);
    std::printf("actual speedup %.2f (estimated %.2f)\n",
                exp.actualSpeedup, exp.estimatedSpeedup);
    std::printf("%s\n",
                sst::renderStackTable(exp.stack, exp.actualSpeedup)
                    .c_str());
}

} // namespace

int
main()
{
    sst::SimParams params;
    params.ncores = 16;

    // Step 1: profile the original application.
    const sst::BenchmarkProfile before = baseWorkload();
    const sst::SpeedupExperiment exp_before =
        sst::runSpeedupExperiment(params, before, 16);
    report("original (one global lock)", exp_before);

    // Step 2: the stack shows synchronization (spinning and/or
    // yielding) as the dominant delimiter -> apply the paper's advice.
    sst::BenchmarkProfile after = before;
    after.numLocks = 16;  // finer-grained locking
    after.csCompute = 48; // smaller critical sections
    const sst::SpeedupExperiment exp_after =
        sst::runSpeedupExperiment(params, after, 16);
    report("optimized (16 fine-grained locks, half the CS)", exp_after);

    const double gain = exp_after.actualSpeedup / exp_before.actualSpeedup;
    std::printf("speedup improvement: %.2fx (%.2f -> %.2f)\n", gain,
                exp_before.actualSpeedup, exp_after.actualSpeedup);
    std::printf("the stack predicted up to +%.2f speedup units from "
                "eliminating synchronization entirely.\n",
                exp_before.stack.spin + exp_before.stack.yield);
    return 0;
}
