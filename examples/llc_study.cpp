/**
 * @file
 * LLC-performance study (the paper's Section 7.3 use case): sweep the
 * shared LLC size for one benchmark and watch the interference
 * components move. Negative interference (capacity conflicts between
 * threads) shrinks as the cache grows; positive interference (threads
 * prefetching shared data for each other) is a program property and
 * stays put — so beyond some size, sharing the cache is a net win.
 *
 * Usage: llc_study [benchmark_label]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "cholesky";
    const sst::BenchmarkProfile &profile = sst::profileByLabel(label);

    std::printf("LLC study for %s at 16 threads\n\n", label.c_str());

    sst::TextTable table;
    table.setHeader({"LLC", "actual speedup", "neg LLC", "pos LLC",
                     "net", "memory", "verdict"});
    for (const std::uint64_t mb : std::vector<std::uint64_t>{1, 2, 4, 8}) {
        sst::SimParams params;
        params.ncores = 16;
        params.cache.llcBytes = mb * 1024 * 1024;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, 16);
        const double net = exp.stack.netNegLlc();
        table.addRow({std::to_string(mb) + "MB",
                      sst::fmtDouble(exp.actualSpeedup, 2),
                      sst::fmtDouble(exp.stack.negLlc, 2),
                      sst::fmtDouble(exp.stack.posLlc, 2),
                      sst::fmtDouble(net, 2),
                      sst::fmtDouble(exp.stack.negMem, 2),
                      net > 0.1 ? "sharing hurts"
                                : (net < -0.1 ? "sharing helps"
                                              : "neutral")});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
