/**
 * @file
 * Workload-characterization example (the paper's Section 7.2 use case):
 * run a set of benchmarks at 16 threads, build their speedup stacks and
 * print the classification tree — scaling class and the top-3 scaling
 * delimiters per benchmark — plus side-by-side stack bars for the
 * benchmarks whose speedups look similar but whose bottlenecks differ.
 *
 * Usage: classify_suite [nthreads]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/classify.hh"
#include "core/experiment.hh"
#include "core/render.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const int nthreads = argc > 1 ? std::atoi(argv[1]) : 16;

    // A representative subset: one good scaler, two benchmarks with
    // nearly identical speedup but different bottlenecks (the paper's
    // facesim vs cholesky example), and a memory-bound one.
    const std::vector<std::string> subset = {
        "blackscholes_medium", "facesim_medium", "cholesky", "srad",
        "ferret_small"};

    std::vector<sst::ClassifiedBenchmark> rows;
    std::vector<sst::SpeedupStack> stacks;
    std::vector<std::string> labels;
    for (const auto &label : subset) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        sst::SimParams params;
        params.ncores = nthreads;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, nthreads);
        rows.push_back(sst::classifyBenchmark(
            label, profile.suite, exp.actualSpeedup, exp.stack));
        stacks.push_back(exp.stack);
        labels.push_back(label.substr(0, 6));
        std::printf("%-22s actual %5.2f  estimated %5.2f\n",
                    label.c_str(), exp.actualSpeedup,
                    exp.estimatedSpeedup);
    }

    std::printf("\nclassification tree:\n%s\n",
                sst::renderClassificationTree(rows).c_str());
    std::printf("speedup stacks:\n%s\n",
                sst::renderStackBars(stacks, labels, 20).c_str());
    std::printf("reading: facesim and cholesky reach almost the same "
                "speedup, but facesim is limited by yielding and cache "
                "interference while cholesky spends its cycles "
                "spinning — different fixes apply.\n");
    return 0;
}
