# High-contention transactional workload (DBx1000 style): 16 clients
# hammer a 64-entry lock table with zipf(0.9)-skewed keys and a 50/50
# read/write mix — most transactions collide on the hottest few locks,
# so the spin component dominates the speedup stack.
wdl 1
workload "txn_high"
seed 7
lock keys[64]

group clients threads=16 private=128K {
  loop 16000 {
    txn txn_ops=16 rw_ratio=0.5 locks=keys zipf(0.9) compute=uniform(10, 30) memory=2
  }
}
