# A fig01-style speedup stack scenario: one 16-thread replicated group
# doing barrier-phased compute with a modest shared working set. The
# phase barriers produce the imbalance component, the shared references
# the coherency/LLC components — the canonical shape of the paper's
# introductory stacks.
wdl 1
workload "fig01_style"
seed 42

group main threads=16 private=256K shared=1M {
  # 8 barrier-aligned phases; `each` keeps one phase structure per
  # thread (the trip count is per thread, not divided over the group).
  loop 8 each {
    phase {
      # ~6400 loop iterations divided over the 16 threads.
      loop 6400 {
        compute uniform(80, 120)
        memory 2
        memory 1 shared store=0.1
      }
    }
  }
}
