# Low-contention counterpart of txn_high.wdl: uniform keys
# (zipf theta 0) over the same 64-entry lock table and a read-only
# mix, so transactions rarely collide and the stack stays almost
# synchronization-free. Diff the two stacks to isolate the cost of
# key skew.
wdl 1
workload "txn_low"
seed 7
lock keys[64]

group clients threads=16 private=128K {
  loop 16000 {
    txn txn_ops=16 rw_ratio=1.0 locks=keys zipf(0.0) compute=uniform(10, 30) memory=2
  }
}
