# Cross-group lock contention — a scenario no registered profile can
# express: two 8-thread groups share one 64-entry lock table, one
# keying zipf(0.9) (skewed, hot locks) and one zipf(0.0) (uniform).
# The skewed group's hot keys collide with the uniform group's
# accesses, so the uniform group inherits spin time it would never
# produce alone.
wdl 1
workload "contention"
seed 11
lock keys[64]

group hot threads=8 private=128K {
  loop 8000 {
    txn txn_ops=16 rw_ratio=0.5 locks=keys zipf(0.9) compute=uniform(10, 30) memory=2
  }
}

group uniform threads=8 private=128K {
  loop 8000 {
    txn txn_ops=16 rw_ratio=0.5 locks=keys zipf(0.0) compute=uniform(10, 30) memory=2
  }
}
