/**
 * @file
 * Quickstart: simulate one benchmark on a 16-core CMP, build its speedup
 * stack, and print the Figure-5-style breakdown. This is the minimal
 * end-to-end use of the library:
 *
 *   1. pick a workload profile (here: cholesky, the paper's
 *      spinning-dominated example),
 *   2. run the single-threaded reference and the 16-threaded execution,
 *   3. print actual vs estimated speedup and the stack components.
 *
 * Usage: quickstart [benchmark_label] [nthreads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "core/render.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "cholesky";
    const int nthreads = argc > 2 ? std::atoi(argv[2]) : 16;

    const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
    sst::SimParams params;
    params.ncores = nthreads;

    std::printf("simulating %s with %d threads...\n",
                profile.label().c_str(), nthreads);
    const sst::SpeedupExperiment exp =
        sst::runSpeedupExperiment(params, profile, nthreads);

    std::printf("\nTs (single-threaded) = %llu cycles\n",
                static_cast<unsigned long long>(exp.ts));
    std::printf("Tp (%d threads)      = %llu cycles\n", nthreads,
                static_cast<unsigned long long>(exp.tp));
    std::printf("actual speedup    = %.2f\n", exp.actualSpeedup);
    std::printf("estimated speedup = %.2f\n", exp.estimatedSpeedup);
    std::printf("error (Eq. 6)     = %.1f%%\n\n", exp.error * 100.0);

    std::printf("%s\n",
                sst::renderStackTable(exp.stack, exp.actualSpeedup).c_str());
    return 0;
}
